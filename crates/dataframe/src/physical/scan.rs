//! Table scans.
//!
//! Two flavors: the columnar fast path over the built-in cache (with
//! predicate and projection pushdown — this is what makes Spark's columnar
//! cache beat a row store on projections, Fig. 8), and a generic
//! provider scan used for any other [`TableProvider`] (the row fallback
//! path of Fig. 2).

use crate::column::ColumnarTable;
use crate::context::{Context, TableProvider};
use crate::expr::BoundExpr;
use crate::physical::{
    count_path, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::Schema;
use std::sync::Arc;

/// Scan of the built-in columnar cache with optional pushed-down predicate
/// and projection.
pub struct ColumnarScanExec {
    pub table: Arc<ColumnarTable>,
    pub predicate: Option<BoundExpr>,
    pub projection: Option<Vec<usize>>,
    out_schema: Arc<Schema>,
}

impl ColumnarScanExec {
    pub fn new(
        table: Arc<ColumnarTable>,
        predicate: Option<BoundExpr>,
        projection: Option<Vec<usize>>,
    ) -> ColumnarScanExec {
        let out_schema = match &projection {
            Some(cols) => table.schema.project(cols),
            None => Arc::clone(&table.schema),
        };
        ColumnarScanExec {
            table,
            predicate,
            projection,
            out_schema,
        }
    }
}

impl ExecPlan for ColumnarScanExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let table = Arc::clone(&self.table);
        let rows_in = table.num_rows() as u64;
        let predicate = self.predicate.clone();
        let projection = self.projection.clone();
        // Row-at-a-time per-row expression walk: the planner only picks
        // this exec when the batch kernels don't cover the predicate.
        count_path(ctx, false);
        observe_operator(ctx, "scan", rows_in, || {
            Ok(ctx
                .cluster()
                .run_stage_partitions(table.num_partitions(), move |tc| {
                    let part = &table.partitions[tc.partition];
                    let n = part.num_rows();
                    let mut out = Vec::new();
                    for i in 0..n {
                        if let Some(pred) = &predicate {
                            if !BoundExpr::is_true(&pred.eval_columnar(part, i)) {
                                continue;
                            }
                        }
                        match &projection {
                            Some(cols) => out.push(part.row_projected(i, cols)),
                            None => out.push(part.row(i)),
                        }
                    }
                    out
                })?)
        })
    }

    fn describe(&self, indent: usize) -> String {
        let mut line = format!("ColumnarScan [{} partitions]", self.table.num_partitions());
        if self.predicate.is_some() {
            line.push_str(" +filter");
        }
        if let Some(p) = &self.projection {
            line.push_str(&format!(" +project({} cols)", p.len()));
        }
        describe_node(indent, &line, &[])
    }
}

/// Generic scan over any table provider, with predicate/projection
/// pushdown delegated to the provider (which may still have to touch whole
/// rows — the row representation the paper notes is "less efficient than
/// the columnar format ... for projections", §IV-D).
pub struct ProviderScanExec {
    pub provider: Arc<dyn TableProvider>,
    pub label: String,
    pub predicate: Option<BoundExpr>,
    pub projection: Option<Vec<usize>>,
    out_schema: Arc<Schema>,
}

impl ProviderScanExec {
    pub fn new(provider: Arc<dyn TableProvider>, label: impl Into<String>) -> ProviderScanExec {
        Self::with_pushdown(provider, label, None, None)
    }

    pub fn with_pushdown(
        provider: Arc<dyn TableProvider>,
        label: impl Into<String>,
        predicate: Option<BoundExpr>,
        projection: Option<Vec<usize>>,
    ) -> ProviderScanExec {
        let out_schema = match &projection {
            Some(cols) => provider.schema().project(cols),
            None => provider.schema(),
        };
        ProviderScanExec {
            provider,
            label: label.into(),
            predicate,
            projection,
            out_schema,
        }
    }
}

impl ExecPlan for ProviderScanExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let provider = Arc::clone(&self.provider);
        let rows_in = provider.num_rows() as u64;
        let predicate = self.predicate.clone();
        let projection = self.projection.clone();
        count_path(ctx, false);
        observe_operator(ctx, "scan", rows_in, || {
            Ok(ctx
                .cluster()
                .run_stage_partitions(provider.num_partitions(), move |tc| {
                    provider.scan_partition_pushdown(
                        tc.partition,
                        predicate.as_ref(),
                        projection.as_deref(),
                    )
                })?)
        })
    }

    fn describe(&self, indent: usize) -> String {
        let mut line = format!(
            "ProviderScan: {} [{} partitions]",
            self.label,
            self.provider.num_partitions()
        );
        if self.predicate.is_some() {
            line.push_str(" +filter");
        }
        if let Some(p) = &self.projection {
            line.push_str(&format!(" +project({} cols)", p.len()));
        }
        describe_node(indent, &line, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use rowstore::{DataType, Field, Row, Value};
    use sparklet::{Cluster, ClusterConfig};

    fn setup() -> (Arc<Context>, Arc<ColumnarTable>) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]);
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("n{i}"))])
            .collect();
        let table = Arc::new(ColumnarTable::from_rows(schema, rows, 4));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        (ctx, table)
    }

    #[test]
    fn plain_scan_returns_everything() {
        let (ctx, table) = setup();
        let scan = ColumnarScanExec::new(table, None, None);
        let parts = scan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn pushed_down_filter() {
        let (ctx, table) = setup();
        let pred = BoundExpr::bind(&col("id").lt(lit(10i64)), &table.schema).unwrap();
        let scan = ColumnarScanExec::new(table, Some(pred), None);
        let rows = crate::physical::gather(scan.execute(&ctx).unwrap());
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn pushed_down_projection() {
        let (ctx, table) = setup();
        let scan = ColumnarScanExec::new(table, None, Some(vec![1]));
        assert_eq!(scan.schema().arity(), 1);
        let rows = crate::physical::gather(scan.execute(&ctx).unwrap());
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn provider_scan_equivalent() {
        let (ctx, table) = setup();
        let scan = ProviderScanExec::new(table.clone() as Arc<dyn TableProvider>, "t");
        let rows = crate::physical::gather(scan.execute(&ctx).unwrap());
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[5].len(), 2);
    }
}
