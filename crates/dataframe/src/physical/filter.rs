//! Row-level filter over an arbitrary child operator.

use crate::context::Context;
use crate::expr::BoundExpr;
use crate::physical::{
    count_path, count_rows, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::Schema;
use std::sync::Arc;

pub struct FilterExec {
    pub input: Arc<dyn ExecPlan>,
    pub predicate: BoundExpr,
}

impl ExecPlan for FilterExec {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let parts = self.input.execute(ctx)?;
        let inputs: Arc<Vec<Vec<rowstore::Row>>> = Arc::new(parts);
        let predicate = self.predicate.clone();
        let inputs2 = Arc::clone(&inputs);
        // Standalone filters walk the expression tree per row and clone
        // every survivor — the path fused pipelines exist to avoid.
        count_path(ctx, false);
        observe_operator(ctx, "filter", count_rows(&inputs), || {
            Ok(ctx
                .cluster()
                .run_stage_partitions(inputs.len(), move |tc| {
                    inputs2[tc.partition]
                        .iter()
                        .filter(|r| BoundExpr::is_true(&predicate.eval_row(r)))
                        .cloned()
                        .collect()
                })?)
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(indent, "Filter", &[self.input.as_ref()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::expr::{col, lit};
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field, Row, Value};
    use sparklet::{Cluster, ClusterConfig};

    #[test]
    fn filters_rows() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let rows: Vec<Row> = (0..50).map(|i| vec![Value::Int64(i)]).collect();
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), rows, 3));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan = Arc::new(ColumnarScanExec::new(table, None, None));
        let pred = BoundExpr::bind(&col("x").gt_eq(lit(40i64)), &schema).unwrap();
        let f = FilterExec {
            input: scan,
            predicate: pred,
        };
        let out = gather(f.execute(&ctx).unwrap());
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r[0].as_i64().unwrap() >= 40));
    }
}
