//! Vanilla Spark join strategies — the paper's baselines (§II, §IV-C).
//!
//! * [`BroadcastHashJoinExec`]: build a hash table from the small side,
//!   replicate it to every worker, probe locally ("BroadcastHash Join").
//! * [`ShuffledHashJoinExec`]: shuffle both sides by key hash, build and
//!   probe per co-located partition.
//! * [`SortMergeJoinExec`]: shuffle both sides, sort each partition by key,
//!   merge ("the notoriously slow SortMerge Join", §IV-E).
//!
//! All are inner equi-joins with null-rejecting keys; output columns are
//! the left schema followed by the right schema. Every strategy re-builds
//! its hash table (or re-sorts) on *every* execution — the per-query cost
//! the Indexed DataFrame amortizes away (Fig. 1).

use crate::context::{Context, StatsTarget};
use crate::physical::{
    count_rows, describe_node, observe_operator, ExecError, ExecPlan, KeyWrap, Partitions,
};
use rowstore::{Row, Schema, Value};
use sparklet::metrics::Metrics;
use sparklet::ShuffleItem;
use std::collections::HashMap;
use std::sync::Arc;

/// Build a key → rows multimap, dropping null keys. `capacity` is a row
/// count hint (callers know it exactly from `count_rows`/`len`); the table
/// is pre-sized for it so the build loop never rehashes.
pub(crate) fn build_table(
    rows: impl IntoIterator<Item = Row>,
    key: usize,
    capacity: usize,
) -> HashMap<KeyWrap, Vec<Row>> {
    let mut table: HashMap<KeyWrap, Vec<Row>> = HashMap::with_capacity(capacity);
    for row in rows {
        if row[key].is_null() {
            continue;
        }
        table
            .entry(KeyWrap(row[key].clone()))
            .or_default()
            .push(row);
    }
    table
}

/// Concatenate a left row and a right row.
#[inline]
pub(crate) fn joined(left: &Row, right: &Row) -> Row {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

/// Exact materialized size of a set of partitions (the number the runtime
/// stats catalog records; estimates never enter here).
pub(crate) fn parts_bytes(parts: &Partitions) -> u64 {
    parts
        .iter()
        .flat_map(|p| p.iter().map(|r| r.approx_bytes() as u64))
        .sum()
}

/// Materialized size measured from a stride sample of the rows. Small
/// inputs (≤ 4096 rows) are summed exactly; larger ones extrapolate from
/// ~1024 evenly-spaced rows, so the per-query accounting cost stays flat
/// while the number is still derived from the actual rows in memory (the
/// distinction that matters vs planner estimates is measured-vs-guessed,
/// not exact-vs-sampled).
pub(crate) fn parts_bytes_sampled(parts: &Partitions) -> u64 {
    let rows: usize = parts.iter().map(|p| p.len()).sum();
    if rows <= 4096 {
        return parts_bytes(parts);
    }
    let stride = rows.div_ceil(1024);
    let (mut sampled, mut bytes) = (0u64, 0u64);
    for (i, row) in parts.iter().flat_map(|p| p.iter()).enumerate() {
        if i % stride == 0 {
            sampled += 1;
            bytes += row.approx_bytes() as u64;
        }
    }
    bytes * rows as u64 / sampled.max(1)
}

/// The broadcast-hash join body over already-materialized inputs: hash the
/// build side once, broadcast-account it, probe per partition. Shared by
/// [`BroadcastHashJoinExec`] and the adaptive join's runtime demotion
/// (which decides on materialized sizes *after* its children ran).
pub(crate) fn broadcast_hash_core(
    ctx: &Arc<Context>,
    build_parts: Partitions,
    probe_parts: Partitions,
    build_key: usize,
    probe_key: usize,
    build_is_left: bool,
) -> Result<Partitions, ExecError> {
    let metrics = ctx.cluster().metrics();
    let build_rows = count_rows(&build_parts) as usize;
    let probe_parts = Arc::new(probe_parts);

    // Build phase: collect + hash the build side.
    let table = Metrics::timed(&metrics.build_ns, || {
        Arc::new(build_table(
            build_parts.into_iter().flatten(),
            build_key,
            build_rows,
        ))
    });

    // Broadcast: the table is materialized once and refcounted to every
    // alive worker (the probe tasks below share `table2`); account wire
    // traffic per worker, memory once.
    let table_bytes: u64 = table
        .values()
        .flat_map(|rows| rows.iter().map(|r| r.approx_bytes() as u64))
        .sum();
    let alive = ctx.cluster().alive_workers().len() as u64;
    sparklet::account_broadcast(ctx.cluster(), table_bytes, alive);

    // Probe phase: local hash lookups per probe partition.
    let probe_parts2 = Arc::clone(&probe_parts);
    let table2 = Arc::clone(&table);
    Metrics::timed(&metrics.probe_ns, || {
        ctx.cluster()
            .run_stage_partitions(probe_parts.len(), move |tc| {
                let mut out = Vec::new();
                for probe_row in &probe_parts2[tc.partition] {
                    let k = &probe_row[probe_key];
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = table2.get(KeyWrap::from_ref(k)) {
                        for build_row in matches {
                            out.push(if build_is_left {
                                joined(build_row, probe_row)
                            } else {
                                joined(probe_row, build_row)
                            });
                        }
                    }
                }
                out
            })
    })
    .map_err(ExecError::from)
}

/// Broadcast-hash join: the build side is collected, hashed once on the
/// driver, and replicated to all workers; the probe side streams locally.
pub struct BroadcastHashJoinExec {
    pub build: Arc<dyn ExecPlan>,
    pub probe: Arc<dyn ExecPlan>,
    pub build_key: usize,
    pub probe_key: usize,
    /// Whether the build side is the *left* input of the logical join
    /// (controls output column order).
    pub build_is_left: bool,
    /// Runtime-stats key for the build side — the catalog name when it is
    /// a bare table scan, or a plan fingerprint when it is a join/aggregate
    /// output. Its actual materialized size is recorded in the session's
    /// [`crate::context::RuntimeStats`] so later broadcast decisions use
    /// the measured bytes, not the registration-time estimate.
    pub build_stats: Option<StatsTarget>,
    pub out_schema: Arc<Schema>,
}

impl ExecPlan for BroadcastHashJoinExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        // Children first so the operator span covers only the join's own
        // build/broadcast/probe work.
        let build_parts = self.build.execute(ctx)?;
        let probe_parts = self.probe.execute(ctx)?;
        let build_rows_in = count_rows(&build_parts);
        let rows_in = build_rows_in + count_rows(&probe_parts);
        if let Some(target) = &self.build_stats {
            ctx.runtime_stats()
                .record(target, build_rows_in, parts_bytes(&build_parts));
        }
        let (build_key, probe_key, build_is_left) =
            (self.build_key, self.probe_key, self.build_is_left);
        observe_operator(ctx, "join.broadcast", rows_in, || {
            broadcast_hash_core(
                ctx,
                build_parts,
                probe_parts,
                build_key,
                probe_key,
                build_is_left,
            )
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!(
                "BroadcastHashJoin [build={}]",
                if self.build_is_left { "left" } else { "right" }
            ),
            &[self.build.as_ref(), self.probe.as_ref()],
        )
    }
}

/// Shuffled-hash join: both sides are hash-partitioned on the key; each
/// output partition builds a table from the build side and probes it.
pub struct ShuffledHashJoinExec {
    pub left: Arc<dyn ExecPlan>,
    pub right: Arc<dyn ExecPlan>,
    pub left_key: usize,
    pub right_key: usize,
    /// Build the hash table on the left side (else right).
    pub build_left: bool,
    pub out_schema: Arc<Schema>,
}

/// Key rows by their join-key hash for the exchange; null keys dropped.
pub(crate) fn keyed(parts: Partitions, key: usize) -> Vec<Vec<(u64, Row)>> {
    parts
        .into_iter()
        .map(|rows| {
            rows.into_iter()
                .filter(|r| !r[key].is_null())
                .map(|r| (r[key].key_hash(), r))
                .collect()
        })
        .collect()
}

impl ExecPlan for ShuffledHashJoinExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let p = ctx.shuffle_partitions();
        let left_parts = self.left.execute(ctx)?;
        let right_parts = self.right.execute(ctx)?;
        let rows_in = count_rows(&left_parts) + count_rows(&right_parts);
        let (left_key, right_key, build_left) = (self.left_key, self.right_key, self.build_left);
        let (left_schema, right_schema) = (self.left.schema(), self.right.schema());
        observe_operator(ctx, "join.shuffled", rows_in, || {
            // Both sides travel through the serialized wire format: packed
            // blocks with exact byte accounting instead of cloned rows.
            let left_shuffled = Arc::new(sparklet::exchange_rows(
                ctx.cluster(),
                &left_schema,
                keyed(left_parts, left_key),
                p,
            )?);
            let right_shuffled = Arc::new(sparklet::exchange_rows(
                ctx.cluster(),
                &right_schema,
                keyed(right_parts, right_key),
                p,
            )?);
            shuffled_probe_core(
                ctx,
                left_shuffled,
                right_shuffled,
                left_key,
                right_key,
                build_left,
            )
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!(
                "ShuffledHashJoin [build={}]",
                if self.build_left { "left" } else { "right" }
            ),
            &[self.left.as_ref(), self.right.as_ref()],
        )
    }
}

/// Per-partition build + probe over already-shuffled sides (the reduce
/// body of the shuffled-hash join). Shared by [`ShuffledHashJoinExec`]
/// and the adaptive join's cold-key path. Output is always left ++ right.
pub(crate) fn shuffled_probe_core(
    ctx: &Arc<Context>,
    left_shuffled: Arc<Partitions>,
    right_shuffled: Arc<Partitions>,
    left_key: usize,
    right_key: usize,
    build_left: bool,
) -> Result<Partitions, ExecError> {
    let p = left_shuffled.len();
    assert_eq!(p, right_shuffled.len());
    let metrics = ctx.cluster().metrics();
    Metrics::timed(&metrics.probe_ns, || {
        ctx.cluster().run_stage_partitions(p, move |tc| {
            let (build_rows, probe_rows, build_key, probe_key) = if build_left {
                (
                    &left_shuffled[tc.partition],
                    &right_shuffled[tc.partition],
                    left_key,
                    right_key,
                )
            } else {
                (
                    &right_shuffled[tc.partition],
                    &left_shuffled[tc.partition],
                    right_key,
                    left_key,
                )
            };
            let table = build_table(build_rows.iter().cloned(), build_key, build_rows.len());
            let mut out = Vec::new();
            for probe_row in probe_rows {
                if let Some(matches) = table.get(KeyWrap::from_ref(&probe_row[probe_key])) {
                    for build_row in matches {
                        out.push(if build_left {
                            joined(build_row, probe_row)
                        } else {
                            joined(probe_row, build_row)
                        });
                    }
                }
            }
            out
        })
    })
    .map_err(ExecError::from)
}

/// Sort-merge join: shuffle, sort both sides per partition, merge equal
/// key runs.
pub struct SortMergeJoinExec {
    pub left: Arc<dyn ExecPlan>,
    pub right: Arc<dyn ExecPlan>,
    pub left_key: usize,
    pub right_key: usize,
    pub out_schema: Arc<Schema>,
}

fn cmp_vals(a: &Value, b: &Value) -> std::cmp::Ordering {
    a.sql_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
}

/// The sort-merge reduce body over already-shuffled sides: sort each
/// partition by key and merge equal runs. Shared by [`SortMergeJoinExec`]
/// and the adaptive join's sort-merge flavor (which re-decides strategy at
/// runtime but falls back to this body when no demotion/salting applies).
/// Output is always left ++ right.
pub(crate) fn sort_merge_probe_core(
    ctx: &Arc<Context>,
    left_shuffled: Arc<Partitions>,
    right_shuffled: Arc<Partitions>,
    left_key: usize,
    right_key: usize,
) -> Result<Partitions, ExecError> {
    let p = left_shuffled.len();
    assert_eq!(p, right_shuffled.len());
    let metrics = ctx.cluster().metrics();
    Metrics::timed(&metrics.probe_ns, || {
        let ls = Arc::clone(&left_shuffled);
        let rs = Arc::clone(&right_shuffled);
        ctx.cluster().run_stage_partitions(p, move |tc| {
            // Sort both sides by key (the "build" analogue).
            let mut left: Vec<&Row> = ls[tc.partition].iter().collect();
            let mut right: Vec<&Row> = rs[tc.partition].iter().collect();
            left.sort_by(|a, b| cmp_vals(&a[left_key], &b[left_key]));
            right.sort_by(|a, b| cmp_vals(&a[right_key], &b[right_key]));

            // Merge equal runs.
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < left.len() && j < right.len() {
                match cmp_vals(&left[i][left_key], &right[j][right_key]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Find the extent of the equal run on both sides.
                        let key = &left[i][left_key];
                        let i_end = (i..left.len())
                            .find(|&x| !left[x][left_key].sql_eq(key))
                            .unwrap_or(left.len());
                        let j_end = (j..right.len())
                            .find(|&x| !right[x][right_key].sql_eq(key))
                            .unwrap_or(right.len());
                        for l in &left[i..i_end] {
                            for r in &right[j..j_end] {
                                out.push(joined(l, r));
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            out
        })
    })
    .map_err(ExecError::from)
}

impl ExecPlan for SortMergeJoinExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let p = ctx.shuffle_partitions();
        let left_parts = self.left.execute(ctx)?;
        let right_parts = self.right.execute(ctx)?;
        let rows_in = count_rows(&left_parts) + count_rows(&right_parts);
        let (left_key, right_key) = (self.left_key, self.right_key);
        let (left_schema, right_schema) = (self.left.schema(), self.right.schema());
        observe_operator(ctx, "join.sortmerge", rows_in, || {
            let left_shuffled = Arc::new(sparklet::exchange_rows(
                ctx.cluster(),
                &left_schema,
                keyed(left_parts, left_key),
                p,
            )?);
            let right_shuffled = Arc::new(sparklet::exchange_rows(
                ctx.cluster(),
                &right_schema,
                keyed(right_parts, right_key),
                p,
            )?);

            sort_merge_probe_core(ctx, left_shuffled, right_shuffled, left_key, right_key)
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            "SortMergeJoin",
            &[self.left.as_ref(), self.right.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field};
    use sparklet::{Cluster, ClusterConfig};

    fn left_schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::nullable("k", DataType::Int64),
            Field::new("lval", DataType::Utf8),
        ])
    }

    fn right_schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::nullable("k", DataType::Int64),
            Field::new("rval", DataType::Int64),
        ])
    }

    /// Left: keys 0..20 twice (40 rows) plus a null-key row.
    fn left_rows() -> Vec<Row> {
        let mut rows: Vec<Row> = (0..40)
            .map(|i| vec![Value::Int64(i % 20), Value::Utf8(format!("L{i}"))])
            .collect();
        rows.push(vec![Value::Null, Value::Utf8("null-key".into())]);
        rows
    }

    /// Right: keys 10..30 (20 rows) plus a null-key row.
    fn right_rows() -> Vec<Row> {
        let mut rows: Vec<Row> = (10..30)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 100)])
            .collect();
        rows.push(vec![Value::Null, Value::Int64(-1)]);
        rows
    }

    /// Reference nested-loop join.
    fn expected() -> Vec<Row> {
        let mut out = Vec::new();
        for l in left_rows() {
            for r in right_rows() {
                if l[0].sql_eq(&r[0]) {
                    out.push(joined(&l, &r));
                }
            }
        }
        out
    }

    type JoinFixture = (
        Arc<Context>,
        Arc<dyn ExecPlan>,
        Arc<dyn ExecPlan>,
        Arc<Schema>,
    );

    fn setup() -> JoinFixture {
        let lt = Arc::new(ColumnarTable::from_rows(left_schema(), left_rows(), 3));
        let rt = Arc::new(ColumnarTable::from_rows(right_schema(), right_rows(), 2));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let ls: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(lt, None, None));
        let rs: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(rt, None, None));
        let out_schema = left_schema().join(&right_schema());
        (ctx, ls, rs, out_schema)
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn broadcast_hash_join_matches_reference() {
        let (ctx, ls, rs, schema) = setup();
        // Build on the right (smaller) side.
        let j = BroadcastHashJoinExec {
            build: rs,
            probe: ls,
            build_key: 0,
            probe_key: 0,
            build_is_left: false,
            build_stats: None,
            out_schema: schema,
        };
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(got.len(), 20, "10..20 twice on the left");
        assert_eq!(sorted(got), sorted(expected()));
        let m = ctx.cluster().metrics().snapshot();
        assert!(m.build_ns > 0 && m.probe_ns > 0);
        assert!(m.broadcast_bytes > 0);
    }

    #[test]
    fn broadcast_join_build_left_order() {
        let (ctx, ls, rs, schema) = setup();
        let j = BroadcastHashJoinExec {
            build: ls,
            probe: rs,
            build_key: 0,
            probe_key: 0,
            build_is_left: true,
            build_stats: None,
            out_schema: schema,
        };
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(
            sorted(got),
            sorted(expected()),
            "column order is left++right"
        );
    }

    #[test]
    fn shuffled_hash_join_matches_reference() {
        let (ctx, ls, rs, schema) = setup();
        let j = ShuffledHashJoinExec {
            left: ls,
            right: rs,
            left_key: 0,
            right_key: 0,
            build_left: false,
            out_schema: schema,
        };
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(expected()));
        let m = ctx.cluster().metrics().snapshot();
        assert!(m.shuffle_rows > 0, "shuffled join must shuffle");
    }

    #[test]
    fn shuffled_hash_join_build_left() {
        let (ctx, ls, rs, schema) = setup();
        let j = ShuffledHashJoinExec {
            left: ls,
            right: rs,
            left_key: 0,
            right_key: 0,
            build_left: true,
            out_schema: schema,
        };
        assert_eq!(sorted(gather(j.execute(&ctx).unwrap())), sorted(expected()));
    }

    #[test]
    fn sort_merge_join_matches_reference() {
        let (ctx, ls, rs, schema) = setup();
        let j = SortMergeJoinExec {
            left: ls,
            right: rs,
            left_key: 0,
            right_key: 0,
            out_schema: schema,
        };
        assert_eq!(sorted(gather(j.execute(&ctx).unwrap())), sorted(expected()));
    }

    #[test]
    fn duplicate_keys_on_both_sides_cross_product() {
        // 3 left × 2 right rows with the same key → 6 output rows.
        let ls_rows: Vec<Row> = (0..3)
            .map(|i| vec![Value::Int64(7), Value::Utf8(format!("l{i}"))])
            .collect();
        let rs_rows: Vec<Row> = (0..2)
            .map(|i| vec![Value::Int64(7), Value::Int64(i)])
            .collect();
        let lt = Arc::new(ColumnarTable::from_rows(left_schema(), ls_rows, 2));
        let rt = Arc::new(ColumnarTable::from_rows(right_schema(), rs_rows, 1));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let schema = left_schema().join(&right_schema());
        for exec in [
            Box::new(SortMergeJoinExec {
                left: Arc::new(ColumnarScanExec::new(lt.clone(), None, None)),
                right: Arc::new(ColumnarScanExec::new(rt.clone(), None, None)),
                left_key: 0,
                right_key: 0,
                out_schema: schema.clone(),
            }) as Box<dyn ExecPlan>,
            Box::new(ShuffledHashJoinExec {
                left: Arc::new(ColumnarScanExec::new(lt.clone(), None, None)),
                right: Arc::new(ColumnarScanExec::new(rt.clone(), None, None)),
                left_key: 0,
                right_key: 0,
                build_left: false,
                out_schema: schema.clone(),
            }),
        ] {
            assert_eq!(gather(exec.execute(&ctx).unwrap()).len(), 6);
        }
    }

    #[test]
    fn empty_sides() {
        let lt = Arc::new(ColumnarTable::from_rows(left_schema(), Vec::new(), 2));
        let rt = Arc::new(ColumnarTable::from_rows(right_schema(), right_rows(), 2));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let schema = left_schema().join(&right_schema());
        let j = ShuffledHashJoinExec {
            left: Arc::new(ColumnarScanExec::new(lt, None, None)),
            right: Arc::new(ColumnarScanExec::new(rt, None, None)),
            left_key: 0,
            right_key: 0,
            build_left: false,
            out_schema: schema,
        };
        assert!(gather(j.execute(&ctx).unwrap()).is_empty());
    }
}
