//! Hash aggregation: per-partition partial aggregation on the cluster,
//! followed by a driver-side final merge (Spark's partial/final two-phase
//! aggregate).

use crate::context::Context;
use crate::physical::{
    count_rows, describe_node, observe_operator, ExecError, ExecPlan, GroupKey, Partitions,
};
use crate::plan::AggFunc;
use rowstore::{Row, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A bound aggregate: function plus input column index (None = COUNT(*)).
#[derive(Debug, Clone, Copy)]
pub struct BoundAgg {
    pub func: AggFunc,
    pub input: Option<usize>,
}

/// Mergeable accumulator state.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        seen: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) counts non-nulls.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Float64(f) => {
                            *float += f;
                            *any_float = true;
                            *seen = true;
                        }
                        Value::Int32(_) | Value::Int64(_) => {
                            *int += val.as_i64().unwrap();
                            *seen = true;
                        }
                        _ => {}
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.sql_cmp(c) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.sql_cmp(c) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (
                Acc::Sum {
                    int: ai,
                    float: af,
                    any_float: aaf,
                    seen: asn,
                },
                Acc::Sum {
                    int: bi,
                    float: bf,
                    any_float: baf,
                    seen: bsn,
                },
            ) => {
                *ai += bi;
                *af += bf;
                *aaf |= baf;
                *asn |= bsn;
            }
            (Acc::Min(a), Acc::Min(Some(b))) => {
                if a.as_ref()
                    .is_none_or(|c| b.sql_cmp(c) == Some(std::cmp::Ordering::Less))
                {
                    *a = Some(b.clone());
                }
            }
            (Acc::Max(a), Acc::Max(Some(b))) => {
                if a.as_ref()
                    .is_none_or(|c| b.sql_cmp(c) == Some(std::cmp::Ordering::Greater))
                {
                    *a = Some(b.clone());
                }
            }
            (Acc::Min(_), Acc::Min(None)) | (Acc::Max(_), Acc::Max(None)) => {}
            (
                Acc::Avg {
                    sum: asum,
                    count: ac,
                },
                Acc::Avg {
                    sum: bsum,
                    count: bc,
                },
            ) => {
                *asum += bsum;
                *ac += bc;
            }
            _ => unreachable!("merging mismatched accumulators"),
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(*n),
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_float {
                    Value::Float64(*float + *int as f64)
                } else {
                    Value::Int64(*int)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *count as f64)
                }
            }
        }
    }
}

pub struct HashAggExec {
    pub input: Arc<dyn ExecPlan>,
    /// Indices of group-by columns in the input schema.
    pub group_by: Vec<usize>,
    pub aggs: Vec<BoundAgg>,
    pub out_schema: Arc<Schema>,
}

impl ExecPlan for HashAggExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let inputs = Arc::new(self.input.execute(ctx)?);
        let group_by = self.group_by.clone();
        let aggs = self.aggs.clone();
        let inputs2 = Arc::clone(&inputs);

        observe_operator(ctx, "agg", count_rows(&inputs), || {
            // Phase 1: partial aggregation per partition, in parallel.
            let partials: Vec<HashMap<GroupKey, Vec<Acc>>> =
                ctx.cluster()
                    .run_stage_partitions(inputs.len(), move |tc| {
                        let mut table: HashMap<GroupKey, Vec<Acc>> = HashMap::new();
                        for row in &inputs2[tc.partition] {
                            let key = GroupKey(group_by.iter().map(|&i| row[i].clone()).collect());
                            let accs = table
                                .entry(key)
                                .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.func)).collect());
                            for (acc, spec) in accs.iter_mut().zip(&aggs) {
                                acc.update(spec.input.map(|i| &row[i]));
                            }
                        }
                        table
                    })?;

            // Phase 2: final merge on the driver.
            let mut merged: HashMap<GroupKey, Vec<Acc>> = HashMap::new();
            for partial in partials {
                for (key, accs) in partial {
                    match merged.entry(key) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(accs);
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (a, b) in e.get_mut().iter_mut().zip(&accs) {
                                a.merge(b);
                            }
                        }
                    }
                }
            }

            let rows: Vec<Row> = merged
                .into_iter()
                .map(|(key, accs)| {
                    let mut row = key.0;
                    row.extend(accs.iter().map(|a| a.finish()));
                    row
                })
                .collect();
            Ok(vec![rows])
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!(
                "HashAggregate [{} groups cols, {} aggs]",
                self.group_by.len(),
                self.aggs.len()
            ),
            &[self.input.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field};
    use sparklet::{Cluster, ClusterConfig};

    fn setup() -> (Arc<Context>, Arc<dyn ExecPlan>, Arc<Schema>) {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::nullable("v", DataType::Int64),
            Field::new("f", DataType::Float64),
        ]);
        // 30 rows: groups 0,1,2; v = i (null when i % 5 == 0); f = i as f64.
        let rows: Vec<Row> = (0..30)
            .map(|i| {
                vec![
                    Value::Int64(i % 3),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i)
                    },
                    Value::Float64(i as f64),
                ]
            })
            .collect();
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), rows, 3));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(table, None, None));
        (ctx, scan, schema)
    }

    #[test]
    fn grouped_aggregation() {
        let (ctx, scan, _) = setup();
        let out_schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64),
            Field::new("cnt_v", DataType::Int64),
            Field::nullable("sum_v", DataType::Int64),
            Field::nullable("min_v", DataType::Int64),
            Field::nullable("max_v", DataType::Int64),
            Field::nullable("avg_f", DataType::Float64),
        ]);
        let agg = HashAggExec {
            input: scan,
            group_by: vec![0],
            aggs: vec![
                BoundAgg {
                    func: AggFunc::Count,
                    input: None,
                },
                BoundAgg {
                    func: AggFunc::Count,
                    input: Some(1),
                },
                BoundAgg {
                    func: AggFunc::Sum,
                    input: Some(1),
                },
                BoundAgg {
                    func: AggFunc::Min,
                    input: Some(1),
                },
                BoundAgg {
                    func: AggFunc::Max,
                    input: Some(1),
                },
                BoundAgg {
                    func: AggFunc::Avg,
                    input: Some(2),
                },
            ],
            out_schema,
        };
        let mut rows = gather(agg.execute(&ctx).unwrap());
        rows.sort_by_key(|r| r[0].as_i64().unwrap());
        assert_eq!(rows.len(), 3);
        // Group 0: i in {0,3,..,27}, 10 rows; nulls at i=0,15 → count_v=8.
        assert_eq!(rows[0][1], Value::Int64(10));
        assert_eq!(rows[0][2], Value::Int64(8));
        let expected_sum: i64 = (0..30).filter(|i| i % 3 == 0 && i % 5 != 0).sum();
        assert_eq!(rows[0][3], Value::Int64(expected_sum));
        assert_eq!(rows[0][4], Value::Int64(3)); // min non-null in group 0
        assert_eq!(rows[0][5], Value::Int64(27));
        let expected_avg = (0..30).filter(|i| i % 3 == 0).sum::<i64>() as f64 / 10.0;
        assert_eq!(rows[0][6], Value::Float64(expected_avg));
    }

    #[test]
    fn global_aggregation_no_groups() {
        let (ctx, scan, _) = setup();
        let out_schema = Schema::new(vec![Field::new("cnt", DataType::Int64)]);
        let agg = HashAggExec {
            input: scan,
            group_by: vec![],
            aggs: vec![BoundAgg {
                func: AggFunc::Count,
                input: None,
            }],
            out_schema,
        };
        let rows = gather(agg.execute(&ctx).unwrap());
        assert_eq!(rows, vec![vec![Value::Int64(30)]]);
    }

    #[test]
    fn empty_input_with_groups_yields_no_rows() {
        let schema = Schema::new(vec![Field::new("g", DataType::Int64)]);
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), Vec::new(), 2));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(table, None, None));
        let agg = HashAggExec {
            input: scan,
            group_by: vec![0],
            aggs: vec![BoundAgg {
                func: AggFunc::Count,
                input: None,
            }],
            out_schema: Schema::new(vec![
                Field::new("g", DataType::Int64),
                Field::new("n", DataType::Int64),
            ]),
        };
        assert!(gather(agg.execute(&ctx).unwrap()).is_empty());
    }
}
