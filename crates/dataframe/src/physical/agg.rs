//! Hash aggregation: per-partition partial aggregation on the cluster,
//! followed by a driver-side final merge (Spark's partial/final two-phase
//! aggregate).
//!
//! Phase 1 has two implementations sharing one group table: a vectorized
//! path that consumes columnar partitions directly (group hashes from
//! column slices, typed accumulator updates, no per-row `GroupKey`
//! materialization) and the row fallback. Both probe an open-addressed
//! index keyed by the group hash and clone key values only when a group is
//! first seen, so the common case — a row landing in an existing group —
//! allocates nothing.

use crate::column::{ColumnVec, ColumnarPartition};
use crate::context::Context;
use crate::physical::{
    count_path, count_rows, describe_node, observe_operator, ExecError, ExecPlan, GroupKey,
    Partitions,
};
use crate::plan::AggFunc;
use rowstore::{Row, Schema, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A bound aggregate: function plus input column index (None = COUNT(*)).
#[derive(Debug, Clone, Copy)]
pub struct BoundAgg {
    pub func: AggFunc,
    pub input: Option<usize>,
}

/// Mergeable accumulator state. Public so incremental view maintenance
/// (the indexed-df standing-view layer) can absorb insert-only deltas into
/// the exact accumulators the batch engine uses — COUNT/SUM/MIN/MAX/AVG
/// all accept new rows in place via [`Acc::update`].
#[derive(Debug, Clone)]
pub enum Acc {
    Count(i64),
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        seen: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
}

impl Acc {
    pub fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) counts non-nulls.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Float64(f) => {
                            *float += f;
                            *any_float = true;
                            *seen = true;
                        }
                        Value::Int32(_) | Value::Int64(_) => {
                            *int += val.as_i64().unwrap();
                            *seen = true;
                        }
                        _ => {}
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.sql_cmp(c) == Some(Ordering::Less))
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.sql_cmp(c) == Some(Ordering::Greater))
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    /// Vectorized update: read slot `i` of a column slice directly, without
    /// materializing a [`Value`] except when a new MIN/MAX extremum must be
    /// retained.
    fn update_from_col(&mut self, col: &ColumnVec, i: usize) {
        match self {
            Acc::Count(n) => {
                if !col.null_at(i) {
                    *n += 1;
                }
            }
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => match col {
                ColumnVec::Float64 { values, nulls } if !nulls[i] => {
                    *float += values[i];
                    *any_float = true;
                    *seen = true;
                }
                ColumnVec::Int64 { values, nulls } if !nulls[i] => {
                    *int += values[i];
                    *seen = true;
                }
                ColumnVec::Int32 { values, nulls } if !nulls[i] => {
                    *int += values[i] as i64;
                    *seen = true;
                }
                _ => {}
            },
            // cmp_value orders col[i] relative to the current extremum, so
            // Less/Greater read exactly as the row path's val.sql_cmp(cur).
            Acc::Min(cur) => {
                if !col.null_at(i)
                    && cur
                        .as_ref()
                        .is_none_or(|c| col.cmp_value(i, c) == Some(Ordering::Less))
                {
                    *cur = Some(col.value(i));
                }
            }
            Acc::Max(cur) => {
                if !col.null_at(i)
                    && cur
                        .as_ref()
                        .is_none_or(|c| col.cmp_value(i, c) == Some(Ordering::Greater))
                {
                    *cur = Some(col.value(i));
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(f) = col.f64_at(i) {
                    *sum += f;
                    *count += 1;
                }
            }
        }
    }

    pub fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (
                Acc::Sum {
                    int: ai,
                    float: af,
                    any_float: aaf,
                    seen: asn,
                },
                Acc::Sum {
                    int: bi,
                    float: bf,
                    any_float: baf,
                    seen: bsn,
                },
            ) => {
                *ai += bi;
                *af += bf;
                *aaf |= baf;
                *asn |= bsn;
            }
            (Acc::Min(a), Acc::Min(Some(b))) => {
                if a.as_ref()
                    .is_none_or(|c| b.sql_cmp(c) == Some(Ordering::Less))
                {
                    *a = Some(b.clone());
                }
            }
            (Acc::Max(a), Acc::Max(Some(b))) => {
                if a.as_ref()
                    .is_none_or(|c| b.sql_cmp(c) == Some(Ordering::Greater))
                {
                    *a = Some(b.clone());
                }
            }
            (Acc::Min(_), Acc::Min(None)) | (Acc::Max(_), Acc::Max(None)) => {}
            (
                Acc::Avg {
                    sum: asum,
                    count: ac,
                },
                Acc::Avg {
                    sum: bsum,
                    count: bc,
                },
            ) => {
                *asum += bsum;
                *ac += bc;
            }
            _ => unreachable!("merging mismatched accumulators"),
        }
    }

    pub fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(*n),
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_float {
                    Value::Float64(*float + *int as f64)
                } else {
                    Value::Int64(*int)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / *count as f64)
                }
            }
        }
    }
}

/// Seed of [`rowstore::rows_key_hash`], replicated so the columnar path can
/// fold per-column [`ColumnVec::key_hash_at`] hashes with the identical
/// combine and land in the same buckets as row-built keys.
const GROUP_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Don't reserve more group slots up front than this, however large the
/// partition — high-cardinality inputs grow organically past it.
const GROUP_PRESIZE_CAP: usize = 1 << 14;

/// Partial-aggregation hash table: groups indexed by key hash, with key
/// values cloned only when a group is first created. Dense `keys`/`accs`
/// vectors keep accumulator updates off the map entirely once a group's
/// slot is known.
struct GroupTable {
    map: HashMap<u64, Vec<u32>>,
    keys: Vec<GroupKey>,
    accs: Vec<Vec<Acc>>,
}

impl GroupTable {
    fn with_capacity(cap: usize) -> GroupTable {
        GroupTable {
            map: HashMap::with_capacity(cap),
            keys: Vec::with_capacity(cap),
            accs: Vec::with_capacity(cap),
        }
    }

    /// Find the slot for the group with hash `h`, or create one. `eq` tests
    /// a candidate stored key against the probing row; `make_key`
    /// materializes the key only if the group is new.
    fn slot(
        &mut self,
        h: u64,
        aggs: &[BoundAgg],
        eq: impl Fn(&GroupKey) -> bool,
        make_key: impl FnOnce() -> GroupKey,
    ) -> usize {
        if let Some(bucket) = self.map.get(&h) {
            for &gi in bucket {
                if eq(&self.keys[gi as usize]) {
                    return gi as usize;
                }
            }
        }
        let gi = self.keys.len() as u32;
        self.map.entry(h).or_default().push(gi);
        self.keys.push(make_key());
        self.accs
            .push(aggs.iter().map(|a| Acc::new(a.func)).collect());
        gi as usize
    }

    fn into_pairs(self) -> Vec<(GroupKey, Vec<Acc>)> {
        self.keys.into_iter().zip(self.accs).collect()
    }
}

/// Row-path phase 1 (fallback when the input is not columnar).
fn partial_from_rows(
    rows: &[Row],
    group_by: &[usize],
    aggs: &[BoundAgg],
) -> Vec<(GroupKey, Vec<Acc>)> {
    let mut table = GroupTable::with_capacity(rows.len().min(GROUP_PRESIZE_CAP));
    for row in rows {
        let mut h = GROUP_HASH_SEED;
        for &gi in group_by {
            h = h.rotate_left(13) ^ row[gi].key_hash();
        }
        let slot = table.slot(
            h,
            aggs,
            |k| {
                k.0.iter().zip(group_by).all(|(kv, &ci)| {
                    // Group-by treats NULL as its own group.
                    (kv.is_null() && row[ci].is_null()) || kv.sql_eq(&row[ci])
                })
            },
            || GroupKey(group_by.iter().map(|&i| row[i].clone()).collect()),
        );
        for (acc, spec) in table.accs[slot].iter_mut().zip(aggs) {
            acc.update(spec.input.map(|i| &row[i]));
        }
    }
    table.into_pairs()
}

/// Vectorized phase 1: hash, probe, and accumulate straight off column
/// slices. No `GroupKey` is built for rows that land in an existing group.
fn partial_from_columns(
    part: &ColumnarPartition,
    group_by: &[usize],
    aggs: &[BoundAgg],
) -> Vec<(GroupKey, Vec<Acc>)> {
    let n = part.num_rows();
    let mut table = GroupTable::with_capacity(n.min(GROUP_PRESIZE_CAP));
    let key_cols: Vec<&ColumnVec> = group_by.iter().map(|&i| part.column(i)).collect();
    let agg_cols: Vec<Option<&ColumnVec>> = aggs
        .iter()
        .map(|a| a.input.map(|i| part.column(i)))
        .collect();
    for i in 0..n {
        let mut h = GROUP_HASH_SEED;
        for c in &key_cols {
            h = h.rotate_left(13) ^ c.key_hash_at(i);
        }
        let slot = table.slot(
            h,
            aggs,
            |k| {
                k.0.iter().zip(&key_cols).all(|(kv, c)| {
                    (c.null_at(i) && kv.is_null()) || c.cmp_value(i, kv) == Some(Ordering::Equal)
                })
            },
            || GroupKey(key_cols.iter().map(|c| c.value(i)).collect()),
        );
        for (acc, col) in table.accs[slot].iter_mut().zip(&agg_cols) {
            match col {
                Some(c) => acc.update_from_col(c, i),
                None => acc.update(None), // COUNT(*)
            }
        }
    }
    table.into_pairs()
}

/// Phase 2: merge the per-partition partials on the driver and emit final
/// rows (group key columns, then one value per aggregate).
fn final_merge(partials: Vec<Vec<(GroupKey, Vec<Acc>)>>) -> Vec<Row> {
    let mut merged: HashMap<GroupKey, Vec<Acc>> = HashMap::new();
    for partial in partials {
        for (key, accs) in partial {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
            }
        }
    }
    merged
        .into_iter()
        .map(|(key, accs)| {
            let mut row = key.0;
            row.extend(accs.iter().map(|a| a.finish()));
            row
        })
        .collect()
}

pub struct HashAggExec {
    pub input: Arc<dyn ExecPlan>,
    /// Indices of group-by columns in the input schema.
    pub group_by: Vec<usize>,
    pub aggs: Vec<BoundAgg>,
    pub out_schema: Arc<Schema>,
}

impl ExecPlan for HashAggExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let group_by = self.group_by.clone();
        let aggs = self.aggs.clone();

        // Vectorized phase 1 whenever the child can hand over columnar
        // partitions (fused pipelines do); rows otherwise.
        if let Some(res) = self.input.execute_columnar(ctx) {
            let parts = Arc::new(res?);
            let rows_in = parts.iter().map(|p| p.num_rows() as u64).sum();
            let parts2 = Arc::clone(&parts);
            count_path(ctx, true);
            return observe_operator(ctx, "agg", rows_in, move || {
                let partials = ctx.cluster().run_stage_partitions(parts.len(), move |tc| {
                    partial_from_columns(&parts2[tc.partition], &group_by, &aggs)
                })?;
                Ok(vec![final_merge(partials)])
            });
        }

        let inputs = Arc::new(self.input.execute(ctx)?);
        let inputs2 = Arc::clone(&inputs);
        count_path(ctx, false);
        observe_operator(ctx, "agg", count_rows(&inputs), move || {
            let partials = ctx
                .cluster()
                .run_stage_partitions(inputs.len(), move |tc| {
                    partial_from_rows(&inputs2[tc.partition], &group_by, &aggs)
                })?;
            Ok(vec![final_merge(partials)])
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!(
                "HashAggregate [{} groups cols, {} aggs]",
                self.group_by.len(),
                self.aggs.len()
            ),
            &[self.input.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::physical::gather;
    use crate::physical::pipeline::{ColumnarPipelineExec, Projection};
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field};
    use sparklet::{Cluster, ClusterConfig};

    fn setup() -> (Arc<Context>, Arc<dyn ExecPlan>, Arc<Schema>) {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::nullable("v", DataType::Int64),
            Field::new("f", DataType::Float64),
        ]);
        // 30 rows: groups 0,1,2; v = i (null when i % 5 == 0); f = i as f64.
        let rows: Vec<Row> = (0..30)
            .map(|i| {
                vec![
                    Value::Int64(i % 3),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i)
                    },
                    Value::Float64(i as f64),
                ]
            })
            .collect();
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), rows, 3));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(table, None, None));
        (ctx, scan, schema)
    }

    fn all_aggs() -> Vec<BoundAgg> {
        vec![
            BoundAgg {
                func: AggFunc::Count,
                input: None,
            },
            BoundAgg {
                func: AggFunc::Count,
                input: Some(1),
            },
            BoundAgg {
                func: AggFunc::Sum,
                input: Some(1),
            },
            BoundAgg {
                func: AggFunc::Min,
                input: Some(1),
            },
            BoundAgg {
                func: AggFunc::Max,
                input: Some(1),
            },
            BoundAgg {
                func: AggFunc::Avg,
                input: Some(2),
            },
        ]
    }

    fn agg_out_schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("cnt", DataType::Int64),
            Field::new("cnt_v", DataType::Int64),
            Field::nullable("sum_v", DataType::Int64),
            Field::nullable("min_v", DataType::Int64),
            Field::nullable("max_v", DataType::Int64),
            Field::nullable("avg_f", DataType::Float64),
        ])
    }

    #[test]
    fn grouped_aggregation() {
        let (ctx, scan, _) = setup();
        let agg = HashAggExec {
            input: scan,
            group_by: vec![0],
            aggs: all_aggs(),
            out_schema: agg_out_schema(),
        };
        let mut rows = gather(agg.execute(&ctx).unwrap());
        rows.sort_by_key(|r| r[0].as_i64().unwrap());
        assert_eq!(rows.len(), 3);
        // Group 0: i in {0,3,..,27}, 10 rows; nulls at i=0,15 → count_v=8.
        assert_eq!(rows[0][1], Value::Int64(10));
        assert_eq!(rows[0][2], Value::Int64(8));
        let expected_sum: i64 = (0..30).filter(|i| i % 3 == 0 && i % 5 != 0).sum();
        assert_eq!(rows[0][3], Value::Int64(expected_sum));
        assert_eq!(rows[0][4], Value::Int64(3)); // min non-null in group 0
        assert_eq!(rows[0][5], Value::Int64(27));
        let expected_avg = (0..30).filter(|i| i % 3 == 0).sum::<i64>() as f64 / 10.0;
        assert_eq!(rows[0][6], Value::Float64(expected_avg));
    }

    #[test]
    fn global_aggregation_no_groups() {
        let (ctx, scan, _) = setup();
        let out_schema = Schema::new(vec![Field::new("cnt", DataType::Int64)]);
        let agg = HashAggExec {
            input: scan,
            group_by: vec![],
            aggs: vec![BoundAgg {
                func: AggFunc::Count,
                input: None,
            }],
            out_schema,
        };
        let rows = gather(agg.execute(&ctx).unwrap());
        assert_eq!(rows, vec![vec![Value::Int64(30)]]);
    }

    #[test]
    fn empty_input_with_groups_yields_no_rows() {
        let schema = Schema::new(vec![Field::new("g", DataType::Int64)]);
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), Vec::new(), 2));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan: Arc<dyn ExecPlan> = Arc::new(ColumnarScanExec::new(table, None, None));
        let agg = HashAggExec {
            input: scan,
            group_by: vec![0],
            aggs: vec![BoundAgg {
                func: AggFunc::Count,
                input: None,
            }],
            out_schema: Schema::new(vec![
                Field::new("g", DataType::Int64),
                Field::new("n", DataType::Int64),
            ]),
        };
        assert!(gather(agg.execute(&ctx).unwrap()).is_empty());
    }

    #[test]
    fn vectorized_phase_matches_row_path() {
        // Same aggregation, once over the row-producing scan and once over
        // a fused pipeline that yields columnar partitions; the vectorized
        // phase 1 must agree with the row fallback on every accumulator,
        // including null handling.
        let (ctx, scan, schema) = setup();
        let row_agg = HashAggExec {
            input: scan,
            group_by: vec![0],
            aggs: all_aggs(),
            out_schema: agg_out_schema(),
        };
        let mut row_out = gather(row_agg.execute(&ctx).unwrap());
        row_out.sort_by_key(|r| r[0].as_i64().unwrap());

        let rows: Vec<Row> = (0..30)
            .map(|i| {
                vec![
                    Value::Int64(i % 3),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i)
                    },
                    Value::Float64(i as f64),
                ]
            })
            .collect();
        let table = ColumnarTable::from_rows(Arc::clone(&schema), rows, 3);
        let pipeline = Arc::new(ColumnarPipelineExec::new(
            Arc::new(table),
            "t",
            None,
            Projection::All,
            schema,
        ));
        let vec_before = ctx
            .cluster()
            .registry()
            .counter_value("operator.vectorized");
        let vec_agg = HashAggExec {
            input: pipeline,
            group_by: vec![0],
            aggs: all_aggs(),
            out_schema: agg_out_schema(),
        };
        let mut vec_out = gather(vec_agg.execute(&ctx).unwrap());
        vec_out.sort_by_key(|r| r[0].as_i64().unwrap());
        assert_eq!(row_out, vec_out);
        assert!(
            ctx.cluster()
                .registry()
                .counter_value("operator.vectorized")
                > vec_before,
            "aggregation over a pipeline takes the vectorized path"
        );
    }
}
