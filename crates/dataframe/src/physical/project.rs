//! Projection: compute output columns from each input row.

use crate::context::Context;
use crate::expr::BoundExpr;
use crate::physical::{
    count_path, count_rows, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::Schema;
use std::sync::Arc;

pub struct ProjectExec {
    pub input: Arc<dyn ExecPlan>,
    pub exprs: Vec<BoundExpr>,
    pub out_schema: Arc<Schema>,
}

impl ExecPlan for ProjectExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let inputs = Arc::new(self.input.execute(ctx)?);
        let exprs = self.exprs.clone();
        let inputs2 = Arc::clone(&inputs);
        count_path(ctx, false);
        observe_operator(ctx, "project", count_rows(&inputs), || {
            Ok(ctx
                .cluster()
                .run_stage_partitions(inputs.len(), move |tc| {
                    inputs2[tc.partition]
                        .iter()
                        .map(|r| exprs.iter().map(|e| e.eval_row(r)).collect())
                        .collect()
                })?)
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!("Project [{} exprs]", self.exprs.len()),
            &[self.input.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::expr::{col, lit};
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field, Row, Value};
    use sparklet::{Cluster, ClusterConfig};

    #[test]
    fn computes_expressions() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ]);
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int64(i), Value::Int64(i * 2)])
            .collect();
        let table = Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), rows, 2));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan = Arc::new(ColumnarScanExec::new(table, None, None));
        let exprs = vec![
            BoundExpr::bind(&col("a").add(col("b")), &schema).unwrap(),
            BoundExpr::bind(&lit(1i64), &schema).unwrap(),
        ];
        let out_schema = Schema::new(vec![
            Field::new("sum", DataType::Int64),
            Field::new("one", DataType::Int64),
        ]);
        let p = ProjectExec {
            input: scan,
            exprs,
            out_schema,
        };
        let rows = gather(p.execute(&ctx).unwrap());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            let a_plus_b = r[0].as_i64().unwrap();
            assert_eq!(a_plus_b % 3, 0, "a + 2a is divisible by 3");
            assert_eq!(r[1], Value::Int64(1));
        }
    }
}
