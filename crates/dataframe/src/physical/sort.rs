//! ORDER BY: gather and sort on the driver.
//!
//! Spark performs a range-partitioned distributed sort; at this
//! reproduction's scale a driver-side sort preserves semantics (total
//! order across the single output partition) without the sampling
//! machinery. Nulls sort last regardless of direction, as in Spark's
//! default `NULLS LAST` for ascending order.

use crate::context::Context;
use crate::physical::{
    count_rows, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::{Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

pub struct SortExec {
    pub input: Arc<dyn ExecPlan>,
    /// Column index and descending flag per sort key.
    pub keys: Vec<(usize, bool)>,
}

fn cmp_nulls_last(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

impl ExecPlan for SortExec {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let parts = self.input.execute(ctx)?;
        let keys = self.keys.clone();
        observe_operator(ctx, "sort", count_rows(&parts), move || {
            let mut rows: Vec<rowstore::Row> = parts.into_iter().flatten().collect();
            rows.sort_by(|a, b| {
                for (col, desc) in &keys {
                    let ord = cmp_nulls_last(&a[*col], &b[*col]);
                    // Descending reverses value order but keeps nulls last.
                    let ord = if *desc && !a[*col].is_null() && !b[*col].is_null() {
                        ord.reverse()
                    } else {
                        ord
                    };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            Ok(vec![rows])
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!("Sort [{} keys]", self.keys.len()),
            &[self.input.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field, Row};
    use sparklet::{Cluster, ClusterConfig};

    fn run_sort(rows: Vec<Row>, keys: Vec<(usize, bool)>) -> Vec<Row> {
        let schema = Schema::new(vec![
            Field::nullable("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]);
        let table = Arc::new(ColumnarTable::from_rows(schema, rows, 3));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan = Arc::new(ColumnarScanExec::new(table, None, None));
        gather(SortExec { input: scan, keys }.execute(&ctx).unwrap())
    }

    #[test]
    fn ascending_with_nulls_last() {
        let rows = vec![
            vec![Value::Int64(3), Value::Utf8("c".into())],
            vec![Value::Null, Value::Utf8("n".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Int64(2), Value::Utf8("b".into())],
        ];
        let sorted = run_sort(rows, vec![(0, false)]);
        let got: Vec<Option<i64>> = sorted.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(got, vec![Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn descending_keeps_nulls_last() {
        let rows = vec![
            vec![Value::Int64(3), Value::Utf8("c".into())],
            vec![Value::Null, Value::Utf8("n".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
        ];
        let sorted = run_sort(rows, vec![(0, true)]);
        let got: Vec<Option<i64>> = sorted.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(got, vec![Some(3), Some(1), None]);
    }

    #[test]
    fn multi_key_tiebreak() {
        let rows = vec![
            vec![Value::Int64(1), Value::Utf8("z".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Int64(0), Value::Utf8("m".into())],
        ];
        let sorted = run_sort(rows, vec![(0, false), (1, false)]);
        assert_eq!(sorted[0][1], Value::Utf8("m".into()));
        assert_eq!(sorted[1][1], Value::Utf8("a".into()));
        assert_eq!(sorted[2][1], Value::Utf8("z".into()));
    }
}
