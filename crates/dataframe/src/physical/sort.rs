//! ORDER BY: per-partition sort on workers, k-way merge on the driver.
//!
//! Spark performs a range-partitioned distributed sort; at this
//! reproduction's scale the O(n log n) comparison work is what matters, so
//! workers stable-sort their own partitions in parallel and the driver
//! only merges the sorted runs (O(total·k) comparisons for k partitions).
//! The merge breaks ties by partition index and each run is sorted stably,
//! so the total output equals a stable sort of the concatenated input —
//! rows with equal keys keep their partition-then-input order. Nulls sort
//! last regardless of direction, as in Spark's default `NULLS LAST` for
//! ascending order.

use crate::context::Context;
use crate::physical::{
    count_rows, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::{Row, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

pub struct SortExec {
    pub input: Arc<dyn ExecPlan>,
    /// Column index and descending flag per sort key.
    pub keys: Vec<(usize, bool)>,
}

fn cmp_nulls_last(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    }
}

fn cmp_rows(a: &[Value], b: &[Value], keys: &[(usize, bool)]) -> Ordering {
    for (col, desc) in keys {
        let ord = cmp_nulls_last(&a[*col], &b[*col]);
        // Descending reverses value order but keeps nulls last.
        let ord = if *desc && !a[*col].is_null() && !b[*col].is_null() {
            ord.reverse()
        } else {
            ord
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

impl ExecPlan for SortExec {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let parts = self.input.execute(ctx)?;
        let keys = self.keys.clone();
        let inputs = Arc::new(parts);
        let inputs2 = Arc::clone(&inputs);
        let keys2 = keys.clone();
        observe_operator(ctx, "sort", count_rows(&inputs), move || {
            // Phase 1 (workers, parallel): stable-sort each partition as an
            // index permutation over the shared read-only snapshot.
            let perms: Vec<Vec<u32>> =
                ctx.cluster()
                    .run_stage_partitions(inputs.len(), move |tc| {
                        let rows = &inputs2[tc.partition];
                        let mut idx: Vec<u32> = (0..rows.len() as u32).collect();
                        idx.sort_by(|&a, &b| {
                            cmp_rows(&rows[a as usize], &rows[b as usize], &keys2)
                        });
                        idx
                    })?;
            // Phase 2 (driver): reclaim ownership — the stage closure is
            // dropped, so ours is the last reference — apply the
            // permutations (O(1) moves), and k-way merge the sorted runs.
            let mut parts: Partitions = Arc::try_unwrap(inputs).unwrap_or_else(|a| (*a).clone());
            let mut sorted: Vec<Vec<Row>> = parts
                .iter_mut()
                .zip(perms)
                .map(|(p, perm)| {
                    perm.into_iter()
                        .map(|i| std::mem::take(&mut p[i as usize]))
                        .collect()
                })
                .collect();
            let total = sorted.iter().map(Vec::len).sum();
            let mut cursors = vec![0usize; sorted.len()];
            let mut out = Vec::with_capacity(total);
            for _ in 0..total {
                let mut best: Option<usize> = None;
                for p in 0..sorted.len() {
                    if cursors[p] >= sorted[p].len() {
                        continue;
                    }
                    best = Some(match best {
                        None => p,
                        // Strictly-less keeps the earlier partition on
                        // ties — this is what makes the merge stable.
                        Some(b)
                            if cmp_rows(&sorted[p][cursors[p]], &sorted[b][cursors[b]], &keys)
                                == Ordering::Less =>
                        {
                            p
                        }
                        Some(b) => b,
                    });
                }
                let p = best.expect("merge ran out of rows early");
                out.push(std::mem::take(&mut sorted[p][cursors[p]]));
                cursors[p] += 1;
            }
            Ok(vec![out])
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!("Sort [{} keys]", self.keys.len()),
            &[self.input.as_ref()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::physical::gather;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field, Row};
    use sparklet::{Cluster, ClusterConfig};

    fn run_sort(rows: Vec<Row>, keys: Vec<(usize, bool)>) -> Vec<Row> {
        let schema = Schema::new(vec![
            Field::nullable("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]);
        let table = Arc::new(ColumnarTable::from_rows(schema, rows, 3));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan = Arc::new(ColumnarScanExec::new(table, None, None));
        gather(SortExec { input: scan, keys }.execute(&ctx).unwrap())
    }

    #[test]
    fn ascending_with_nulls_last() {
        let rows = vec![
            vec![Value::Int64(3), Value::Utf8("c".into())],
            vec![Value::Null, Value::Utf8("n".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Int64(2), Value::Utf8("b".into())],
        ];
        let sorted = run_sort(rows, vec![(0, false)]);
        let got: Vec<Option<i64>> = sorted.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(got, vec![Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn descending_keeps_nulls_last() {
        let rows = vec![
            vec![Value::Int64(3), Value::Utf8("c".into())],
            vec![Value::Null, Value::Utf8("n".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
        ];
        let sorted = run_sort(rows, vec![(0, true)]);
        let got: Vec<Option<i64>> = sorted.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(got, vec![Some(3), Some(1), None]);
    }

    #[test]
    fn multi_key_tiebreak() {
        let rows = vec![
            vec![Value::Int64(1), Value::Utf8("z".into())],
            vec![Value::Int64(1), Value::Utf8("a".into())],
            vec![Value::Int64(0), Value::Utf8("m".into())],
        ];
        let sorted = run_sort(rows, vec![(0, false), (1, false)]);
        assert_eq!(sorted[0][1], Value::Utf8("m".into()));
        assert_eq!(sorted[1][1], Value::Utf8("a".into()));
        assert_eq!(sorted[2][1], Value::Utf8("z".into()));
    }

    #[test]
    fn merge_is_stable_across_partitions() {
        // Equal sort keys everywhere; payloads record (partition, pos).
        // A stable distributed sort must return them in partition order,
        // then input order — exactly what the old concat-then-stable-sort
        // produced.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("tag", DataType::Utf8),
        ]);
        let parts: Vec<Vec<Row>> = (0..3)
            .map(|p| {
                (0..4)
                    .map(|i| {
                        vec![
                            Value::Int64((i % 2) as i64),
                            Value::Utf8(format!("p{p}r{i}")),
                        ]
                    })
                    .collect()
            })
            .collect();
        let table = Arc::new(ColumnarTable::from_partitions(Arc::clone(&schema), parts));
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let scan = Arc::new(ColumnarScanExec::new(table, None, None));
        let sorted = gather(
            SortExec {
                input: scan,
                keys: vec![(0, false)],
            }
            .execute(&ctx)
            .unwrap(),
        );
        let tags: Vec<&str> = sorted.iter().map(|r| r[1].as_str().unwrap()).collect();
        assert_eq!(
            tags,
            vec![
                // k=0 rows: partition order, then input order within each.
                "p0r0", "p0r2", "p1r0", "p1r2", "p2r0", "p2r2", // k=1 rows likewise.
                "p0r1", "p0r3", "p1r1", "p1r3", "p2r1", "p2r3",
            ]
        );
    }
}
