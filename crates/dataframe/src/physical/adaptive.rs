//! Runtime-adaptive join: re-decides its strategy *after* both inputs are
//! materialized, when actual sizes and key frequencies are known — the
//! "free statistics" the shuffle's counting stage already produces, turned
//! into execution decisions instead of a counter nobody reads.
//!
//! Decision ladder (first match wins), taken at `execute` time:
//!
//! 1. **Demote to broadcast-hash** — the static planner chose a shuffle
//!    join from size *estimates*, but the materialized build side fits the
//!    broadcast threshold. Broadcasting it skips both exchanges entirely.
//! 2. **Salted / partial-broadcast join** — a key hash on the probe side
//!    exceeds the cluster's skew threshold (it would alone overflow its
//!    reduce partition). The *hot* build rows are broadcast and hot probe
//!    rows are joined in place — they never touch the wire — while cold
//!    keys take the normal shuffled-hash path. Routing is by key hash on
//!    both sides, so every key's rows travel the same path and the output
//!    multiset is exactly the inner join.
//! 3. **Shuffled-hash with adaptive repartitioning** — no runtime
//!    opportunity; both sides go through [`sparklet::exchange_rows_adaptive`],
//!    which still splits oversized reduce buckets and coalesces near-empty
//!    ones.
//!
//! Observed input cardinalities are recorded in the session's
//! [`crate::context::RuntimeStats`] — keyed by catalog name for bare table
//! scans and by plan fingerprint for join/aggregate inputs — so the *next*
//! query's static plan starts from measured sizes.

use crate::context::{Context, StatsTarget};
use crate::physical::join::{
    broadcast_hash_core, keyed, parts_bytes_sampled, shuffled_probe_core, sort_merge_probe_core,
};
use crate::physical::{
    count_rows, describe_node, observe_operator, ExecError, ExecPlan, Partitions,
};
use rowstore::{Row, Schema};
use sparklet::{ShuffleItem, SpanKind, SpanRecord};
use std::collections::HashMap;
use std::sync::Arc;

pub struct AdaptiveJoinExec {
    pub left: Arc<dyn ExecPlan>,
    pub right: Arc<dyn ExecPlan>,
    pub left_key: usize,
    pub right_key: usize,
    /// Runtime-stats keys for the inputs — catalog names for bare table
    /// scans, plan fingerprints for join/aggregate subtrees — the
    /// cardinality-feedback hook.
    pub left_stats: Option<StatsTarget>,
    pub right_stats: Option<StatsTarget>,
    /// When no runtime opportunity applies (no demotion, no salting), fall
    /// back to the sort-merge body instead of shuffled-hash — the flavor a
    /// `prefer_sort_merge` session would have planned statically. Demotion
    /// and salting still fire first, so sort-merge joins now re-decide at
    /// runtime too.
    pub sort_merge: bool,
    pub out_schema: Arc<Schema>,
}

impl AdaptiveJoinExec {
    fn span(&self, ctx: &Arc<Context>, name: String) {
        let trace = ctx.cluster().trace();
        trace.record(SpanRecord {
            id: trace.next_span_id(),
            parent: trace.current_parent(),
            kind: SpanKind::Operator,
            name,
            start_us: trace.now_us(),
            dur_us: 0,
            worker: -1,
            partition: -1,
        });
    }
}

impl ExecPlan for AdaptiveJoinExec {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn execute(&self, ctx: &Arc<Context>) -> Result<Partitions, ExecError> {
        let left_parts = self.left.execute(ctx)?;
        let right_parts = self.right.execute(ctx)?;
        let left_rows = count_rows(&left_parts);
        let right_rows = count_rows(&right_parts);
        let left_bytes = parts_bytes_sampled(&left_parts);
        let right_bytes = parts_bytes_sampled(&right_parts);

        // Cardinality feedback: record what the inputs actually weigh.
        if let Some(target) = &self.left_stats {
            ctx.runtime_stats().record(target, left_rows, left_bytes);
        }
        if let Some(target) = &self.right_stats {
            ctx.runtime_stats().record(target, right_rows, right_bytes);
        }

        // Build on the side that *measured* smaller (the static planner
        // guessed from estimates; we know).
        let build_left = left_bytes <= right_bytes;
        let threshold = ctx.config().broadcast_threshold_bytes as u64;
        let rows_in = left_rows + right_rows;
        let (left_key, right_key) = (self.left_key, self.right_key);
        let p = ctx.shuffle_partitions();
        let (left_schema, right_schema) = (self.left.schema(), self.right.schema());
        let registry = ctx.cluster().registry();

        observe_operator(ctx, "join.adaptive", rows_in, || {
            let (build_parts, probe_parts, build_key, probe_key, build_bytes) = if build_left {
                (left_parts, right_parts, left_key, right_key, left_bytes)
            } else {
                (right_parts, left_parts, right_key, left_key, right_bytes)
            };

            // 1. Demotion: the materialized build side fits the broadcast
            // threshold — skip both exchanges.
            if build_bytes <= threshold {
                registry.counter("adaptive.join_demotions").inc();
                self.span(
                    ctx,
                    format!(
                        "adaptive.demote[build={} bytes={build_bytes} threshold={threshold}]",
                        if build_left { "left" } else { "right" }
                    ),
                );
                return broadcast_hash_core(
                    ctx,
                    build_parts,
                    probe_parts,
                    build_key,
                    probe_key,
                    build_left,
                );
            }

            // 2. Hot-key detection on the probe side, at key-hash
            // granularity (cheap: no value clones; a colliding cold key
            // just rides the hot path and still joins by value).
            let hot = detect_hot_hashes(
                ctx,
                &probe_parts,
                probe_key,
                &build_parts,
                build_key,
                p,
                threshold,
            );
            if let Some(hot) = hot {
                registry.counter("adaptive.salted_joins").inc();
                self.span(
                    ctx,
                    format!(
                        "adaptive.salt[hot_hashes={} probe_rows={}]",
                        hot.len(),
                        count_rows(&probe_parts)
                    ),
                );

                // Split both sides by hash: hot rows leave the shuffle.
                let mut hot_build: Vec<Row> = Vec::new();
                let mut cold_build: Vec<Vec<(u64, Row)>> = Vec::new();
                for part in build_parts {
                    let mut cold = Vec::new();
                    for row in part {
                        if row[build_key].is_null() {
                            continue;
                        }
                        let h = row[build_key].key_hash();
                        if hot.contains(&h) {
                            hot_build.push(row);
                        } else {
                            cold.push((h, row));
                        }
                    }
                    cold_build.push(cold);
                }
                let mut hot_probe: Partitions = Vec::new();
                let mut cold_probe: Vec<Vec<(u64, Row)>> = Vec::new();
                for part in probe_parts {
                    let mut hot_rows = Vec::new();
                    let mut cold = Vec::new();
                    for row in part {
                        if row[probe_key].is_null() {
                            continue;
                        }
                        let h = row[probe_key].key_hash();
                        if hot.contains(&h) {
                            hot_rows.push(row);
                        } else {
                            cold.push((h, row));
                        }
                    }
                    hot_probe.push(hot_rows);
                    cold_probe.push(cold);
                }

                // Cold keys: the normal shuffled-hash path (with adaptive
                // repartitioning of any residual imbalance).
                let (cold_left, cold_right) = if build_left {
                    (cold_build, cold_probe)
                } else {
                    (cold_probe, cold_build)
                };
                let (ls, _) =
                    sparklet::exchange_rows_adaptive(ctx.cluster(), &left_schema, cold_left, p)?;
                let (rs, _) =
                    sparklet::exchange_rows_adaptive(ctx.cluster(), &right_schema, cold_right, p)?;
                let mut out = shuffled_probe_core(
                    ctx,
                    Arc::new(ls),
                    Arc::new(rs),
                    left_key,
                    right_key,
                    build_left,
                )?;

                // Hot keys: broadcast the (tiny) hot build rows and join
                // the hot probe rows where they already are — zero wire
                // cost for the heavy side. When no build row carries a hot
                // key (sentinel/unknown-member skew), the inner join of
                // the hot rows is empty by construction: prune the whole
                // hot side without launching a stage.
                if !hot_build.is_empty() {
                    let hot_out = broadcast_hash_core(
                        ctx,
                        vec![hot_build],
                        hot_probe,
                        build_key,
                        probe_key,
                        build_left,
                    )?;
                    out.extend(hot_out);
                }
                return Ok(out);
            }

            // 3. No runtime opportunity: fall back through the adaptive
            // exchange (split/coalesce still applies) to the statically
            // preferred reduce body — sort-merge when the session prefers
            // it, shuffled-hash otherwise.
            let (left_parts, right_parts) = if build_left {
                (build_parts, probe_parts)
            } else {
                (probe_parts, build_parts)
            };
            let (ls, _) = sparklet::exchange_rows_adaptive(
                ctx.cluster(),
                &left_schema,
                keyed(left_parts, left_key),
                p,
            )?;
            let (rs, _) = sparklet::exchange_rows_adaptive(
                ctx.cluster(),
                &right_schema,
                keyed(right_parts, right_key),
                p,
            )?;
            if self.sort_merge {
                sort_merge_probe_core(ctx, Arc::new(ls), Arc::new(rs), left_key, right_key)
            } else {
                shuffled_probe_core(
                    ctx,
                    Arc::new(ls),
                    Arc::new(rs),
                    left_key,
                    right_key,
                    build_left,
                )
            }
        })
    }

    fn describe(&self, indent: usize) -> String {
        describe_node(
            indent,
            &format!(
                "AdaptiveJoin [strategy decided at runtime, fallback={}]",
                if self.sort_merge {
                    "sortmerge"
                } else {
                    "shuffled"
                }
            ),
            &[self.left.as_ref(), self.right.as_ref()],
        )
    }
}

/// Scan the probe side's key hashes for values frequent enough to overflow
/// a reduce partition on their own: a hash is *hot* when its row count
/// exceeds the cluster's skew threshold over the mean per-partition row
/// count. Salting only pays if the matching build rows are broadcastable,
/// so the hot set is discarded when their bytes exceed the threshold.
fn detect_hot_hashes(
    ctx: &Arc<Context>,
    probe_parts: &Partitions,
    probe_key: usize,
    build_parts: &Partitions,
    build_key: usize,
    num_partitions: usize,
    broadcast_threshold: u64,
) -> Option<Vec<u64>> {
    let probe_rows: u64 = probe_parts.iter().map(|p| p.len() as u64).sum();
    if probe_rows == 0 || num_partitions == 0 {
        return None;
    }
    let mean = ((probe_rows + num_partitions as u64 / 2) / num_partitions as u64).max(1);
    let hot_threshold = ctx.cluster().config().skew_threshold(mean as f64);

    // Count key hashes over a stride sample (exact when the probe side is
    // small). A hash is only interesting when it alone overflows a reduce
    // partition — by construction a double-digit percentage of all probe
    // rows — so a few thousand evenly-spaced rows see it many times over.
    // Which keys land in the hot set affects only *routing*, never the
    // join result, so sampling here is safe by the same argument that
    // makes hash collisions safe.
    let stride = (probe_rows as usize).div_ceil(4096).max(1);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for part in probe_parts {
        let mut idx = 0;
        while idx < part.len() {
            let row = &part[idx];
            if !row[probe_key].is_null() {
                *counts.entry(row[probe_key].key_hash()).or_insert(0) += 1;
            }
            idx += stride;
        }
    }
    let stride = stride as u64;
    // A handful of hashes at most — a linear scan beats a hash set for
    // the per-row membership tests the caller is about to run.
    let hot: Vec<u64> = counts
        .iter()
        .filter(|(_, &c)| c * stride > hot_threshold)
        .map(|(&h, _)| h)
        .collect();
    if hot.is_empty() {
        return None;
    }

    // Affordability gate: the hot build rows are about to be broadcast.
    let hot_build_bytes: u64 = build_parts
        .iter()
        .flat_map(|part| part.iter())
        .filter(|row| !row[build_key].is_null() && hot.contains(&row[build_key].key_hash()))
        .map(|row| row.approx_bytes() as u64)
        .sum();
    if hot_build_bytes > broadcast_threshold {
        return None;
    }
    Some(hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::context::ExecConfig;
    use crate::physical::gather;
    use crate::physical::join::ShuffledHashJoinExec;
    use crate::physical::scan::ColumnarScanExec;
    use rowstore::{DataType, Field, Value};
    use sparklet::{Cluster, ClusterConfig};

    fn schema(val: &str) -> Arc<Schema> {
        Schema::new(vec![
            Field::nullable("k", DataType::Int64),
            Field::new(val, DataType::Int64),
        ])
    }

    fn ctx_with_threshold(threshold: usize) -> Arc<Context> {
        Context::with_config(
            Cluster::new(ClusterConfig::test_small()),
            ExecConfig {
                broadcast_threshold_bytes: threshold,
                ..ExecConfig::default()
            },
        )
    }

    fn scan(s: &Arc<Schema>, rows: Vec<Row>, parts: usize) -> Arc<dyn ExecPlan> {
        let t = Arc::new(ColumnarTable::from_rows(Arc::clone(s), rows, parts));
        Arc::new(ColumnarScanExec::new(t, None, None))
    }

    /// Reference nested-loop inner join (left ++ right column order).
    fn reference(left: &[Row], right: &[Row]) -> Vec<Row> {
        let mut out = Vec::new();
        for l in left {
            for r in right {
                if l[0].sql_eq(&r[0]) {
                    let mut row = l.clone();
                    row.extend_from_slice(r);
                    out.push(row);
                }
            }
        }
        out
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    fn adaptive_join(
        left: Arc<dyn ExecPlan>,
        right: Arc<dyn ExecPlan>,
        names: (Option<&str>, Option<&str>),
    ) -> AdaptiveJoinExec {
        let out_schema = left.schema().join(&right.schema());
        AdaptiveJoinExec {
            left,
            right,
            left_key: 0,
            right_key: 0,
            left_stats: names.0.map(|n| StatsTarget::Table(n.to_string())),
            right_stats: names.1.map(|n| StatsTarget::Table(n.to_string())),
            sort_merge: false,
            out_schema,
        }
    }

    /// 300 rows of hot key 7 plus 100 distinct cold keys on the probe side;
    /// 101 single-row keys on the build side.
    fn skewed_fixture() -> (Vec<Row>, Vec<Row>) {
        let build: Vec<Row> = (0..101)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let mut probe: Vec<Row> = (0..300)
            .map(|i| vec![Value::Int64(7), Value::Int64(i)])
            .collect();
        probe.extend((0..100).map(|k| vec![Value::Int64(k), Value::Int64(1000 + k)]));
        probe.push(vec![Value::Null, Value::Int64(-1)]);
        (build, probe)
    }

    #[test]
    fn runtime_demotion_skips_the_shuffle_entirely() {
        // The static planner would only emit AdaptiveJoinExec when it
        // *estimated* both sides over the threshold; here the materialized
        // build side is tiny, so the runtime demotes to broadcast-hash.
        let ctx = ctx_with_threshold(10 << 20);
        let build: Vec<Row> = (0..10)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let probe: Vec<Row> = (0..200)
            .map(|i| vec![Value::Int64(i % 20), Value::Int64(i)])
            .collect();
        let j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (Some("build_t"), Some("probe_t")),
        );
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(reference(&build, &probe)));

        let reg = ctx.cluster().registry();
        assert_eq!(reg.counter("adaptive.join_demotions").get(), 1);
        assert_eq!(reg.counter("adaptive.salted_joins").get(), 0);
        assert_eq!(
            reg.counter("shuffle.exchanges").get(),
            0,
            "demotion must skip both exchanges"
        );
        assert!(ctx.cluster().trace_report().contains("adaptive.demote["));

        // Cardinality feedback landed for both scanned tables.
        let bs = ctx.runtime_stats().observed("build_t").unwrap();
        assert_eq!(bs.rows, 10);
        assert!(bs.bytes > 0);
        assert_eq!(ctx.runtime_stats().observed("probe_t").unwrap().rows, 200);
    }

    #[test]
    fn salted_join_shuffles_only_cold_rows() {
        // Build side (~101 rows) is over the 64-byte threshold, so no
        // demotion; key 7 carries 300 of the 401 probe rows → salted.
        let (build, probe) = skewed_fixture();
        let ctx = ctx_with_threshold(64);
        let j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (None, None),
        );
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(reference(&build, &probe)));

        let reg = ctx.cluster().registry();
        assert_eq!(reg.counter("adaptive.salted_joins").get(), 1);
        assert_eq!(reg.counter("adaptive.join_demotions").get(), 0);
        // Exactly the cold rows cross the wire: 100 cold build rows (101
        // minus hot key 7) + 99 cold probe rows (the 0..100 tail minus its
        // own key-7 row). The 301 hot probe rows and the hot build row
        // never enter an exchange.
        assert_eq!(
            reg.counter("shuffle.rows").get(),
            199,
            "hot-key rows must not be shuffled"
        );
        assert!(ctx.cluster().trace_report().contains("adaptive.salt["));
    }

    #[test]
    fn salted_join_matches_static_shuffled_hash() {
        let (build, probe) = skewed_fixture();
        let adaptive_ctx = ctx_with_threshold(64);
        let j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (None, None),
        );
        let got = gather(j.execute(&adaptive_ctx).unwrap());
        assert_eq!(
            adaptive_ctx
                .cluster()
                .registry()
                .counter("adaptive.salted_joins")
                .get(),
            1
        );

        let static_ctx = ctx_with_threshold(64);
        let s = ShuffledHashJoinExec {
            left: scan(&schema("bv"), build, 2),
            right: scan(&schema("pv"), probe, 4),
            left_key: 0,
            right_key: 0,
            build_left: true,
            out_schema: schema("bv").join(&schema("pv")),
        };
        let want = gather(s.execute(&static_ctx).unwrap());
        assert_eq!(sorted(got), sorted(want));
    }

    #[test]
    fn uniform_input_takes_the_plain_shuffle_path() {
        // No demotion (threshold 1 byte), no hot key (uniform) — the
        // adaptive operator must still produce the join, via the shuffle.
        let ctx = ctx_with_threshold(1);
        let build: Vec<Row> = (0..200)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let probe: Vec<Row> = (0..400)
            .map(|i| vec![Value::Int64(i % 200), Value::Int64(i)])
            .collect();
        let j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (None, None),
        );
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(reference(&build, &probe)));

        let reg = ctx.cluster().registry();
        assert_eq!(reg.counter("adaptive.join_demotions").get(), 0);
        assert_eq!(reg.counter("adaptive.salted_joins").get(), 0);
        assert!(reg.counter("shuffle.exchanges").get() >= 2);
    }

    #[test]
    fn sort_merge_flavor_falls_back_to_sort_merge_body() {
        // Uniform input, nothing broadcastable: the sort-merge flavor must
        // run the sort-merge reduce body (visible via op.join.sortmerge's
        // absence — the core runs inside join.adaptive's span — so assert
        // on the result plus the absence of demotion/salting instead).
        let ctx = ctx_with_threshold(1);
        let build: Vec<Row> = (0..200)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let probe: Vec<Row> = (0..400)
            .map(|i| vec![Value::Int64(i % 200), Value::Int64(i)])
            .collect();
        let mut j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (None, None),
        );
        j.sort_merge = true;
        assert!(j.describe(0).contains("fallback=sortmerge"));
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(reference(&build, &probe)));

        let reg = ctx.cluster().registry();
        assert_eq!(reg.counter("adaptive.join_demotions").get(), 0);
        assert_eq!(reg.counter("adaptive.salted_joins").get(), 0);
        assert!(reg.counter("shuffle.exchanges").get() >= 2);
    }

    #[test]
    fn sort_merge_flavor_still_demotes_tiny_build_sides() {
        // The sort-merge follow-up's point: a prefer_sort_merge session's
        // join re-decides at runtime and skips the exchange when the build
        // side turns out broadcastable.
        let ctx = ctx_with_threshold(10 << 20);
        let build: Vec<Row> = (0..10)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let probe: Vec<Row> = (0..200)
            .map(|i| vec![Value::Int64(i % 20), Value::Int64(i)])
            .collect();
        let mut j = adaptive_join(
            scan(&schema("bv"), build.clone(), 2),
            scan(&schema("pv"), probe.clone(), 4),
            (None, None),
        );
        j.sort_merge = true;
        let got = gather(j.execute(&ctx).unwrap());
        assert_eq!(sorted(got), sorted(reference(&build, &probe)));

        let reg = ctx.cluster().registry();
        assert_eq!(reg.counter("adaptive.join_demotions").get(), 1);
        assert_eq!(
            reg.counter("shuffle.exchanges").get(),
            0,
            "sort-merge demotion must skip both exchanges"
        );
    }

    #[test]
    fn plan_keyed_stats_recorded_for_non_scan_inputs() {
        // A join/aggregate input carries a Plan stats target; executing the
        // adaptive join must record its materialized size under the
        // fingerprint, and forgetting a referenced table must drop it.
        let ctx = ctx_with_threshold(1);
        let build: Vec<Row> = (0..50)
            .map(|k| vec![Value::Int64(k), Value::Int64(k * 10)])
            .collect();
        let probe: Vec<Row> = (0..100)
            .map(|i| vec![Value::Int64(i % 50), Value::Int64(i)])
            .collect();
        let mut j = adaptive_join(
            scan(&schema("bv"), build, 2),
            scan(&schema("pv"), probe, 4),
            (None, None),
        );
        j.left_stats = Some(StatsTarget::Plan {
            fingerprint: 0xfeed,
            tables: vec!["base".into()],
        });
        j.execute(&ctx).unwrap();

        let s = ctx.runtime_stats().observed_plan(0xfeed).unwrap();
        assert_eq!(s.rows, 50);
        assert!(s.bytes > 0);
        ctx.runtime_stats().forget("unrelated");
        assert!(ctx.runtime_stats().observed_plan(0xfeed).is_some());
        ctx.runtime_stats().forget("base");
        assert!(
            ctx.runtime_stats().observed_plan(0xfeed).is_none(),
            "re-registering a referenced table must invalidate the plan observation"
        );
    }
}
