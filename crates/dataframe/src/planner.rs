//! The physical planner: lowers logical plans to executable operators.
//!
//! Before default planning of any node, all registered [`PlannerRule`]s are
//! consulted — this is the seam where the Indexed DataFrame injects its
//! indexed operators (§III-B: "optimization rules transform the logical
//! plan into a physical plan"). Default planning fuses filters and
//! column-only projections into columnar scans and picks join strategies
//! the way Spark does: broadcast-hash below the size threshold, otherwise
//! shuffled-hash or sort-merge.

use crate::column::ColumnarTable;
use crate::context::{Context, StatsTarget};
use crate::expr::{BoundExpr, Expr, PlanError};
use crate::physical::adaptive::AdaptiveJoinExec;
use crate::physical::agg::{BoundAgg, HashAggExec};
use crate::physical::filter::FilterExec;
use crate::physical::join::{BroadcastHashJoinExec, ShuffledHashJoinExec, SortMergeJoinExec};
use crate::physical::limit::LimitExec;
use crate::physical::pipeline::{ColumnarPipelineExec, Projection};
use crate::physical::project::ProjectExec;
use crate::physical::scan::{ColumnarScanExec, ProviderScanExec};
use crate::physical::ExecPlan;
use crate::plan::LogicalPlan;
use std::sync::Arc;

/// Stateless physical planner.
#[derive(Default)]
pub struct Planner;

impl Planner {
    pub fn new() -> Planner {
        Planner
    }

    /// Plan `plan`, consulting extension rules first.
    pub fn plan(
        &self,
        plan: &LogicalPlan,
        ctx: &Arc<Context>,
    ) -> Result<Arc<dyn ExecPlan>, PlanError> {
        for rule in ctx.rules() {
            if let Some(result) = rule.plan(plan, ctx, self) {
                return result;
            }
        }
        self.plan_default(plan, ctx)
    }

    /// Plan without extension rules (used by rules to plan children they do
    /// not handle, avoiding infinite recursion into themselves is the
    /// rule's own responsibility — they normally call `plan`, which is fine
    /// because their match will no longer fire on the child shape).
    pub fn plan_default(
        &self,
        plan: &LogicalPlan,
        ctx: &Arc<Context>,
    ) -> Result<Arc<dyn ExecPlan>, PlanError> {
        match plan {
            LogicalPlan::Scan { table, .. } => self.plan_scan(table, None, None, ctx),

            LogicalPlan::Filter { input, predicate } => {
                // Fuse Filter(Scan) into the scan.
                if let LogicalPlan::Scan { table, .. } = input.as_ref() {
                    return self.plan_scan(table, Some(predicate), None, ctx);
                }
                let child = self.plan(input, ctx)?;
                let predicate = BoundExpr::bind(predicate, &child.schema())?;
                Ok(Arc::new(FilterExec {
                    input: child,
                    predicate,
                }))
            }

            LogicalPlan::Project { input, exprs } => {
                // Fuse column-only projections over (filtered) scans.
                if let Some(cols) = plain_columns(exprs) {
                    // Give extension rules a chance at the child shape
                    // first (e.g. an indexed lookup under a projection).
                    for rule in ctx.rules() {
                        if let Some(result) = rule.plan(input, ctx, self) {
                            let child = result?;
                            let in_schema = child.schema();
                            let idx = resolve_cols(&cols, &in_schema)?;
                            let bound = idx.iter().map(|&i| BoundExpr::Col(i)).collect();
                            let out_schema = in_schema.project(&idx);
                            return Ok(Arc::new(ProjectExec {
                                input: child,
                                exprs: bound,
                                out_schema,
                            }));
                        }
                    }
                    match input.as_ref() {
                        LogicalPlan::Scan { table, schema } => {
                            let idx = resolve_cols(&cols, schema)?;
                            return self.plan_scan(table, None, Some(idx), ctx);
                        }
                        LogicalPlan::Filter {
                            input: inner,
                            predicate,
                        } => {
                            if let LogicalPlan::Scan { table, schema } = inner.as_ref() {
                                let idx = resolve_cols(&cols, schema)?;
                                return self.plan_scan(table, Some(predicate), Some(idx), ctx);
                            }
                        }
                        _ => {}
                    }
                }
                // Computed projection. Extension rules get the child shape
                // first; failing that, fuse the whole scan→filter→project
                // chain into a vectorized pipeline when the batch kernels
                // cover every expression.
                let mut rule_child: Option<Arc<dyn ExecPlan>> = None;
                for rule in ctx.rules() {
                    if let Some(result) = rule.plan(input, ctx, self) {
                        rule_child = Some(result?);
                        break;
                    }
                }
                let child = match rule_child {
                    Some(c) => c,
                    None => {
                        if let Some(fused) =
                            self.fuse_computed_projection(plan, input, exprs, ctx)?
                        {
                            return Ok(fused);
                        }
                        self.plan_default(input, ctx)?
                    }
                };
                let in_schema = child.schema();
                let bound = exprs
                    .iter()
                    .map(|(e, _)| BoundExpr::bind(e, &in_schema))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Arc::new(ProjectExec {
                    input: child,
                    exprs: bound,
                    out_schema: plan.schema()?,
                }))
            }

            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => self.plan_join(left, right, left_key, right_key, ctx),

            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.plan(input, ctx)?;
                let in_schema = child.schema();
                let group_idx = resolve_cols(group_by, &in_schema)?;
                let bound_aggs = aggs
                    .iter()
                    .map(|a| {
                        let input = match &a.input {
                            None => None,
                            Some(c) => Some(
                                in_schema
                                    .index_of(c)
                                    .ok_or_else(|| PlanError::UnknownColumn(c.clone()))?,
                            ),
                        };
                        Ok(BoundAgg {
                            func: a.func,
                            input,
                        })
                    })
                    .collect::<Result<Vec<_>, PlanError>>()?;
                Ok(Arc::new(HashAggExec {
                    input: child,
                    group_by: group_idx,
                    aggs: bound_aggs,
                    out_schema: plan.schema()?,
                }))
            }

            LogicalPlan::Sort { input, keys } => {
                let child = self.plan(input, ctx)?;
                let schema = child.schema();
                let keys = keys
                    .iter()
                    .map(|(k, desc)| {
                        schema
                            .index_of(k)
                            .map(|i| (i, *desc))
                            .ok_or_else(|| PlanError::UnknownColumn(k.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Arc::new(crate::physical::sort::SortExec {
                    input: child,
                    keys,
                }))
            }

            LogicalPlan::Limit { input, n } => {
                let child = self.plan(input, ctx)?;
                // Push a per-partition cap into a fused pipeline so the
                // scan stops early; the outer LimitExec still enforces the
                // global cap across partitions.
                if let Some(p) = child.as_pipeline() {
                    return Ok(Arc::new(LimitExec {
                        input: Arc::new(p.with_limit(*n)),
                        n: *n,
                    }));
                }
                Ok(Arc::new(LimitExec {
                    input: child,
                    n: *n,
                }))
            }
        }
    }

    /// Plan a base-table scan with optional pushed-down predicate and
    /// projection.
    pub fn plan_scan(
        &self,
        table: &str,
        predicate: Option<&Expr>,
        projection: Option<Vec<usize>>,
        ctx: &Arc<Context>,
    ) -> Result<Arc<dyn ExecPlan>, PlanError> {
        let provider = ctx.provider(table)?;
        let schema = provider.schema();
        let predicate = predicate.map(|p| BoundExpr::bind(p, &schema)).transpose()?;
        // Vectorized pipeline whenever the provider exposes columnar
        // partitions and the batch kernels cover the predicate.
        if let Some(source) = provider.columnar_source() {
            if predicate
                .as_ref()
                .is_none_or(|p| p.batch_compatible(&schema))
            {
                let (projection, out_schema) = match projection {
                    Some(idx) => {
                        let out = schema.project(&idx);
                        (Projection::Columns(idx), out)
                    }
                    None => (Projection::All, Arc::clone(&schema)),
                };
                return Ok(Arc::new(ColumnarPipelineExec::new(
                    source, table, predicate, projection, out_schema,
                )));
            }
        }
        // Kernel-incompatible predicate over the built-in cache: row-at-a-
        // time columnar scan.
        if let Some(columnar) = provider.as_any().downcast_ref::<ColumnarTable>() {
            return Ok(Arc::new(ColumnarScanExec::new(
                Arc::new(columnar.clone()),
                predicate,
                projection,
            )));
        }
        // Generic provider: row scan with pushdown delegated to the
        // provider (the Indexed Batch RDD filters on encoded rows).
        Ok(Arc::new(ProviderScanExec::with_pushdown(
            provider, table, predicate, projection,
        )))
    }

    /// Try to fuse a computed projection (with optional filter underneath)
    /// over a base scan into one vectorized pipeline. `None` when the plan
    /// shape doesn't match, the provider has no columnar partitions, or
    /// the batch kernels don't cover some expression.
    fn fuse_computed_projection(
        &self,
        plan: &LogicalPlan,
        input: &LogicalPlan,
        exprs: &[(Expr, String)],
        ctx: &Arc<Context>,
    ) -> Result<Option<Arc<dyn ExecPlan>>, PlanError> {
        let (table, schema, predicate) = match input {
            LogicalPlan::Scan { table, schema } => (table, schema, None),
            LogicalPlan::Filter {
                input: inner,
                predicate,
            } => match inner.as_ref() {
                LogicalPlan::Scan { table, schema } => (table, schema, Some(predicate)),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        let provider = ctx.provider(table)?;
        let Some(source) = provider.columnar_source() else {
            return Ok(None);
        };
        let predicate = predicate.map(|p| BoundExpr::bind(p, schema)).transpose()?;
        if predicate
            .as_ref()
            .is_some_and(|p| !p.batch_compatible(schema))
        {
            return Ok(None);
        }
        let bound = exprs
            .iter()
            .map(|(e, _)| BoundExpr::bind(e, schema))
            .collect::<Result<Vec<_>, _>>()?;
        if !bound.iter().all(|b| b.batch_compatible(schema)) {
            return Ok(None);
        }
        Ok(Some(Arc::new(ColumnarPipelineExec::new(
            source,
            table,
            predicate,
            Projection::Exprs(bound),
            plan.schema()?,
        ))))
    }

    fn plan_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_key: &str,
        right_key: &str,
        ctx: &Arc<Context>,
    ) -> Result<Arc<dyn ExecPlan>, PlanError> {
        let left_phys = self.plan(left, ctx)?;
        let right_phys = self.plan(right, ctx)?;
        let ls = left_phys.schema();
        let rs = right_phys.schema();
        let lk = ls
            .index_of(left_key)
            .ok_or_else(|| PlanError::UnknownColumn(left_key.into()))?;
        let rk = rs
            .index_of(right_key)
            .ok_or_else(|| PlanError::UnknownColumn(right_key.into()))?;
        let out_schema = ls.join(&rs);

        let lsize = estimate_bytes(left, ctx).unwrap_or(usize::MAX);
        let rsize = estimate_bytes(right, ctx).unwrap_or(usize::MAX);
        let threshold = ctx.config().broadcast_threshold_bytes;

        if lsize.min(rsize) <= threshold {
            // Broadcast the smaller side (the build relation, §IV-C).
            let build_is_left = lsize <= rsize;
            let (build, probe, build_key, probe_key, build_plan) = if build_is_left {
                (left_phys, right_phys, lk, rk, left)
            } else {
                (right_phys, left_phys, rk, lk, right)
            };
            return Ok(Arc::new(BroadcastHashJoinExec {
                build,
                probe,
                build_key,
                probe_key,
                build_is_left,
                build_stats: stats_target(build_plan),
                out_schema,
            }));
        }
        if ctx.config().adaptive {
            // No side is estimated broadcastable — defer the strategy
            // decision to runtime, when materialized sizes and key
            // frequencies are known (demotion / salting / plain shuffle,
            // with the sort-merge reduce body when the session prefers it).
            return Ok(Arc::new(AdaptiveJoinExec {
                left: left_phys,
                right: right_phys,
                left_key: lk,
                right_key: rk,
                left_stats: stats_target(left),
                right_stats: stats_target(right),
                sort_merge: ctx.config().prefer_sort_merge,
                out_schema,
            }));
        }
        if ctx.config().prefer_sort_merge {
            return Ok(Arc::new(SortMergeJoinExec {
                left: left_phys,
                right: right_phys,
                left_key: lk,
                right_key: rk,
                out_schema,
            }));
        }
        Ok(Arc::new(ShuffledHashJoinExec {
            left: left_phys,
            right: right_phys,
            left_key: lk,
            right_key: rk,
            build_left: lsize <= rsize,
            out_schema,
        }))
    }
}

/// If every projection expression is a bare column, return the names.
fn plain_columns(exprs: &[(Expr, String)]) -> Option<Vec<String>> {
    exprs
        .iter()
        .map(|(e, name)| match e {
            Expr::Col(c) if c == name => Some(c.clone()),
            _ => None,
        })
        .collect()
}

fn resolve_cols(names: &[String], schema: &rowstore::Schema) -> Result<Vec<usize>, PlanError> {
    names
        .iter()
        .map(|n| {
            schema
                .index_of(n)
                .ok_or_else(|| PlanError::UnknownColumn(n.clone()))
        })
        .collect()
}

/// Runtime-stats key for a join input: bare scans record against their
/// catalog name; join/aggregate subtrees record against their plan
/// fingerprint (tagged with the tables they read, so re-registering any of
/// them invalidates the observation). Filters/projects/sorts/limits stay
/// unkeyed — their output size depends on the predicate, and their input
/// size already serves as the planning upper bound.
fn stats_target(plan: &LogicalPlan) -> Option<StatsTarget> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some(StatsTarget::Table(table.clone())),
        LogicalPlan::Join { .. } | LogicalPlan::Aggregate { .. } => Some(StatsTarget::Plan {
            fingerprint: plan.fingerprint(),
            tables: plan.referenced_tables(),
        }),
        _ => None,
    }
}

/// Size estimation for join-strategy selection. `None` = unknown.
/// Observed runtime statistics (recorded by an earlier query's join over
/// the same table or the same join/aggregate subtree) take precedence over
/// the provider's static estimate.
pub fn estimate_bytes(plan: &LogicalPlan, ctx: &Arc<Context>) -> Option<usize> {
    match plan {
        LogicalPlan::Scan { table, .. } => ctx
            .runtime_stats()
            .observed(table)
            .map(|s| s.bytes as usize)
            .or_else(|| ctx.provider(table).ok().map(|p| p.estimated_bytes())),
        // Filters and projections only shrink their input: the input size
        // is a safe upper bound.
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            estimate_bytes(input, ctx)
        }
        LogicalPlan::Sort { input, .. } => estimate_bytes(input, ctx),
        LogicalPlan::Limit { input, n } => {
            estimate_bytes(input, ctx).map(|b| b.min(n.saturating_mul(64)))
        }
        // Non-scan build sides: unknown until a query materializes the
        // subtree once, after which its measured size is keyed by the plan
        // fingerprint.
        LogicalPlan::Join { .. } | LogicalPlan::Aggregate { .. } => ctx
            .runtime_stats()
            .observed_plan(plan.fingerprint())
            .map(|s| s.bytes as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecConfig;
    use crate::expr::{col, lit};
    use rowstore::{DataType, Field, Row, Schema, Value};
    use sparklet::{Cluster, ClusterConfig};

    fn ctx_with_tables(threshold: usize) -> Arc<Context> {
        ctx_with_tables_cfg(ExecConfig {
            broadcast_threshold_bytes: threshold,
            ..ExecConfig::default()
        })
    }

    fn ctx_with_tables_cfg(config: ExecConfig) -> Arc<Context> {
        let cluster = Cluster::new(ClusterConfig::test_small());
        let ctx = Context::with_config(cluster, config);
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]);
        let big: Vec<Row> = (0..1000)
            .map(|i| vec![Value::Int64(i % 50), Value::Utf8(format!("b{i}"))])
            .collect();
        let small: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("s{i}"))])
            .collect();
        ctx.register_table(
            "big",
            Arc::new(ColumnarTable::from_rows(Arc::clone(&schema), big, 4)),
        );
        ctx.register_table(
            "small",
            Arc::new(ColumnarTable::from_rows(schema, small, 2)),
        );
        ctx
    }

    fn scan(ctx: &Arc<Context>, t: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: t.into(),
            schema: ctx.provider(t).unwrap().schema(),
        }
    }

    #[test]
    fn join_below_threshold_uses_broadcast() {
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "big")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        assert!(phys.describe(0).contains("BroadcastHashJoin"));
    }

    #[test]
    fn join_above_threshold_uses_shuffled_hash() {
        let ctx = ctx_with_tables_cfg(ExecConfig {
            broadcast_threshold_bytes: 1, // nothing broadcasts
            adaptive: false,              // static strategy selection
            ..ExecConfig::default()
        });
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "big")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        assert!(
            phys.describe(0).contains("ShuffledHashJoin"),
            "{}",
            phys.describe(0)
        );
    }

    #[test]
    fn join_above_threshold_defaults_to_adaptive() {
        let ctx = ctx_with_tables(1); // nothing broadcasts statically
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "big")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        assert!(
            phys.describe(0).contains("AdaptiveJoin"),
            "{}",
            phys.describe(0)
        );
    }

    #[test]
    fn runtime_stats_override_provider_estimate() {
        // Without feedback, both sides are estimated over-threshold.
        let ctx = ctx_with_tables(256);
        let join = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "big")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&join, &ctx).unwrap();
        assert!(phys.describe(0).contains("AdaptiveJoin"));

        // A prior query observed "small" is actually tiny: the next static
        // plan picks broadcast straight away.
        ctx.runtime_stats().record_table("small", 10, 100);
        let phys = Planner::new().plan(&join, &ctx).unwrap();
        assert!(
            phys.describe(0).contains("BroadcastHashJoin"),
            "{}",
            phys.describe(0)
        );

        // Re-registering the table invalidates the observation.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]);
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("s{i}"))])
            .collect();
        ctx.register_table("small", Arc::new(ColumnarTable::from_rows(schema, rows, 2)));
        let phys = Planner::new().plan(&join, &ctx).unwrap();
        assert!(phys.describe(0).contains("AdaptiveJoin"));
    }

    #[test]
    fn sort_merge_when_preferred() {
        let cluster = Cluster::new(ClusterConfig::test_small());
        let ctx = Context::with_config(
            cluster,
            ExecConfig {
                broadcast_threshold_bytes: 1,
                prefer_sort_merge: true,
                adaptive: false,
                ..ExecConfig::default()
            },
        );
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int64(i)]).collect();
        ctx.register_table("t", Arc::new(ColumnarTable::from_rows(schema, rows, 2)));
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "t")),
            right: Box::new(scan(&ctx, "t")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        assert!(phys.describe(0).contains("SortMergeJoin"));
    }

    #[test]
    fn sort_merge_preference_rides_the_adaptive_operator() {
        // prefer_sort_merge with adaptive on: the join still re-decides at
        // runtime, but its no-opportunity fallback is the sort-merge body.
        let ctx = ctx_with_tables_cfg(ExecConfig {
            broadcast_threshold_bytes: 1,
            prefer_sort_merge: true,
            ..ExecConfig::default()
        });
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "big")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("AdaptiveJoin") && desc.contains("fallback=sortmerge"),
            "{desc}"
        );
    }

    #[test]
    fn observed_join_output_promotes_nested_build_to_broadcast() {
        // A join used as a build side has no static estimate; after one
        // execution records its materialized size under the plan
        // fingerprint, the next static plan broadcasts it.
        let ctx = ctx_with_tables(256);
        let inner = LogicalPlan::Join {
            left: Box::new(scan(&ctx, "small")),
            right: Box::new(scan(&ctx, "small")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let outer = LogicalPlan::Join {
            left: Box::new(inner.clone()),
            right: Box::new(scan(&ctx, "big")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let phys = Planner::new().plan(&outer, &ctx).unwrap();
        assert!(phys.describe(0).contains("AdaptiveJoin"));

        // Simulate the runtime feedback an execution would record.
        ctx.runtime_stats().record(
            &StatsTarget::Plan {
                fingerprint: inner.fingerprint(),
                tables: inner.referenced_tables(),
            },
            10,
            100,
        );
        let phys = Planner::new().plan(&outer, &ctx).unwrap();
        assert!(
            phys.describe(0).contains("BroadcastHashJoin"),
            "{}",
            phys.describe(0)
        );

        // Re-registering a referenced table invalidates the observation.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]);
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("s{i}"))])
            .collect();
        ctx.register_table("small", Arc::new(ColumnarTable::from_rows(schema, rows, 2)));
        let phys = Planner::new().plan(&outer, &ctx).unwrap();
        assert!(phys.describe(0).contains("AdaptiveJoin"));
    }

    #[test]
    fn filter_over_scan_is_fused() {
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&ctx, "big")),
            predicate: col("k").eq(lit(3i64)),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("ColumnarPipeline") && desc.contains("+filter"),
            "{desc}"
        );
        assert!(!desc.contains("Filter\n"), "no separate FilterExec: {desc}");
    }

    #[test]
    fn column_projection_over_filtered_scan_is_fused() {
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(&ctx, "big")),
                predicate: col("k").lt(lit(5i64)),
            }),
            exprs: vec![(col("v"), "v".into())],
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("ColumnarPipeline")
                && desc.contains("+filter")
                && desc.contains("+project"),
            "{desc}"
        );
        assert_eq!(phys.schema().arity(), 1);
    }

    #[test]
    fn computed_projection_is_fused() {
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Project {
            input: Box::new(scan(&ctx, "big")),
            exprs: vec![(col("k").add(lit(1i64)), "k1".into())],
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("ColumnarPipeline") && desc.contains("+project(1 exprs)"),
            "{desc}"
        );
        assert_eq!(phys.schema().arity(), 1);
    }

    #[test]
    fn kernel_incompatible_predicate_falls_back_to_row_scan() {
        // NOT over a non-boolean column has no batch kernel (the row path
        // defines its panic semantics), so the planner must keep the
        // row-at-a-time columnar scan.
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&ctx, "big")),
            predicate: col("k").not(),
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("ColumnarScan") && !desc.contains("ColumnarPipeline"),
            "{desc}"
        );
    }

    #[test]
    fn limit_is_pushed_into_pipeline() {
        let ctx = ctx_with_tables(1 << 20);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(&ctx, "big")),
                predicate: col("k").lt(lit(5i64)),
            }),
            n: 7,
        };
        let phys = Planner::new().plan(&plan, &ctx).unwrap();
        let desc = phys.describe(0);
        assert!(
            desc.contains("Limit 7") && desc.contains("+limit(7)"),
            "global limit plus per-partition pushdown: {desc}"
        );
    }
}
