//! A literal in-memory rows table: the simplest [`TableProvider`].
//!
//! Used wherever a small, already-materialized row set needs to enter the
//! query engine — e.g. the DataFrame returned by the Indexed DataFrame's
//! `getRows` (Listing 1 returns a *DataFrame*, not a row vector), or probe
//! relations built up programmatically.

use crate::context::TableProvider;
use rowstore::{Row, Schema, Value};
use std::any::Any;
use std::sync::Arc;

/// An immutable, single-partition-per-chunk table over literal rows.
pub struct RowsTable {
    schema: Arc<Schema>,
    partitions: Vec<Arc<Vec<Row>>>,
}

impl RowsTable {
    /// Wrap `rows` in `partitions` chunks (at least one).
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>, partitions: usize) -> RowsTable {
        let partitions = partitions.max(1);
        let chunk = rows.len().div_ceil(partitions).max(1);
        let mut parts: Vec<Arc<Vec<Row>>> =
            rows.chunks(chunk).map(|c| Arc::new(c.to_vec())).collect();
        if parts.is_empty() {
            parts.push(Arc::new(Vec::new()));
        }
        RowsTable {
            schema,
            partitions: parts,
        }
    }

    /// A single-partition table (driver-local result sets).
    pub fn single(schema: Arc<Schema>, rows: Vec<Row>) -> RowsTable {
        RowsTable::new(schema, rows, 1)
    }
}

impl TableProvider for RowsTable {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn scan_partition(&self, partition: usize) -> Vec<Row> {
        self.partitions[partition].as_ref().clone()
    }

    fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    fn estimated_bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Utf8(s) => 8 + s.len(),
                        _ => 8,
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;
    use rowstore::{DataType, Field};
    use sparklet::{Cluster, ClusterConfig};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    #[test]
    fn roundtrip_through_engine() {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let rows: Vec<Row> = (0..25).map(|i| vec![Value::Int64(i)]).collect();
        ctx.register_table("lit", Arc::new(RowsTable::new(schema(), rows, 4)));
        assert_eq!(ctx.sql("SELECT * FROM lit").unwrap().count().unwrap(), 25);
        assert_eq!(
            ctx.sql("SELECT * FROM lit WHERE x < 5")
                .unwrap()
                .count()
                .unwrap(),
            5
        );
    }

    #[test]
    fn empty_table_has_one_partition() {
        let t = RowsTable::new(schema(), Vec::new(), 4);
        assert_eq!(TableProvider::num_partitions(&t), 1);
        assert_eq!(TableProvider::num_rows(&t), 0);
    }

    #[test]
    fn joins_against_literal_probe() {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int64(i % 10)]).collect();
        ctx.register_table(
            "t",
            Arc::new(RowsTable::new(Arc::clone(&schema()), rows, 2)),
        );
        let probe: Vec<Row> = vec![vec![Value::Int64(3)]];
        ctx.register_table("p", Arc::new(RowsTable::single(schema(), probe)));
        let n = ctx
            .table("t")
            .unwrap()
            .join(ctx.table("p").unwrap(), "x", "x")
            .count()
            .unwrap();
        assert_eq!(n, 10);
    }
}
