//! Delta-plan derivation for incremental view maintenance.
//!
//! A standing query over MVCC-append tables doesn't need recomputation
//! when a small batch of rows arrives — for a restricted (but common)
//! family of plans the *delta* of the result is a simple function of the
//! delta of the input (the Differential-Dataflow observation, restricted
//! to insert-only inputs):
//!
//! * filters and projections map delta rows row-by-row;
//! * an equi-join's delta against an append to one side is the appended
//!   rows joined against the *other* side's current contents — which an
//!   indexed table answers with ctrie probes instead of a shuffle;
//! * the accumulator aggregates (COUNT/SUM/MIN/MAX/AVG) absorb insert
//!   deltas in place.
//!
//! The supported grammar, derived here from the logical plan:
//!
//! ```text
//! View  := [Aggregate] [Project] Filter* Core
//! Core  := Scan | Join(Chain, Chain)
//! Chain := Filter* Scan
//! ```
//!
//! Anything else — Sort, Limit, joins of non-scan subtrees, nested
//! aggregates — yields `None`, and the standing-view layer falls back to
//! full recomputation (counted, never wrong). The derivation lives in this
//! crate because it is pure plan analysis; the probing/refresh machinery
//! that consumes it lives with the indexed tables (`indexed-df`).

use crate::expr::{BoundExpr, PlanError};
use crate::physical::agg::{Acc, BoundAgg};
use crate::physical::GroupKey;
use crate::plan::LogicalPlan;
use rowstore::{Row, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// One side of the core: a base-table scan with conjunctive filters bound
/// against the scan schema.
pub struct ScanChain {
    pub table: String,
    pub schema: Arc<Schema>,
    pub filters: Vec<BoundExpr>,
}

impl ScanChain {
    /// Keep the delta rows that pass this chain's filters.
    pub fn apply(&self, rows: &[Row]) -> Vec<Row> {
        rows.iter()
            .filter(|r| {
                self.filters
                    .iter()
                    .all(|p| BoundExpr::is_true(&p.eval_row(r)))
            })
            .cloned()
            .collect()
    }
}

/// The core of a supported view plan.
pub enum CoreShape {
    /// `Filter* Scan` — deltas map straight through.
    Linear(ScanChain),
    /// `Join(Chain, Chain)` — a delta to either side probes the other.
    /// Keys are column indices in the respective chain schemas; output
    /// column order is left ++ right (the engine's join schema).
    Join {
        left: ScanChain,
        right: ScanChain,
        left_key: usize,
        right_key: usize,
    },
}

/// Bound aggregate head: group-by columns and accumulator specs, both
/// resolved against the aggregate's input schema.
pub struct AggShape {
    pub group_by: Vec<usize>,
    pub aggs: Vec<BoundAgg>,
}

/// A derived delta plan: how to push an insert-only delta of one base
/// table through the view without recomputing it.
pub struct DeltaPlan {
    pub core: CoreShape,
    /// Output schema of the core (scan schema, or left ++ right).
    pub core_schema: Arc<Schema>,
    /// Filters sitting *above* a join core, bound against `core_schema`
    /// (for a linear core they are folded into the chain instead).
    pub post_filters: Vec<BoundExpr>,
    /// Projection above the filters, bound against `core_schema`.
    pub project: Option<Vec<BoundExpr>>,
    /// Aggregate head, bound against the projection output (or core).
    pub agg: Option<AggShape>,
}

impl DeltaPlan {
    /// Derive the delta plan for `plan`, or `None` when the shape is
    /// outside the supported grammar (the caller falls back to
    /// recomputation — fallbacks are a counter, never a wrong answer).
    pub fn derive(plan: &LogicalPlan) -> Option<DeltaPlan> {
        Self::try_derive(plan).ok().flatten()
    }

    fn try_derive(plan: &LogicalPlan) -> Result<Option<DeltaPlan>, PlanError> {
        let mut cur = plan;

        // Optional aggregate head.
        let mut agg = None;
        if let LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } = cur
        {
            let in_schema = input.schema()?;
            let mut group_idx = Vec::with_capacity(group_by.len());
            for g in group_by {
                match in_schema.index_of(g) {
                    Some(i) => group_idx.push(i),
                    None => return Ok(None),
                }
            }
            let mut bound = Vec::with_capacity(aggs.len());
            for a in aggs {
                let input = match &a.input {
                    None => None,
                    Some(c) => match in_schema.index_of(c) {
                        Some(i) => Some(i),
                        None => return Ok(None),
                    },
                };
                bound.push(BoundAgg {
                    func: a.func,
                    input,
                });
            }
            agg = Some(AggShape {
                group_by: group_idx,
                aggs: bound,
            });
            cur = input;
        }

        // Optional projection.
        let mut project = None;
        if let LogicalPlan::Project { input, exprs } = cur {
            let in_schema = input.schema()?;
            let bound = exprs
                .iter()
                .map(|(e, _)| BoundExpr::bind(e, &in_schema))
                .collect::<Result<Vec<_>, _>>()?;
            project = Some(bound);
            cur = input;
        }

        // Filters between the projection and the core.
        let mut filters = Vec::new();
        while let LogicalPlan::Filter { input, predicate } = cur {
            let in_schema = input.schema()?;
            filters.push(BoundExpr::bind(predicate, &in_schema)?);
            cur = input;
        }

        match cur {
            LogicalPlan::Scan { table, schema } => Ok(Some(DeltaPlan {
                core: CoreShape::Linear(ScanChain {
                    table: table.clone(),
                    schema: Arc::clone(schema),
                    filters,
                }),
                core_schema: Arc::clone(schema),
                post_filters: Vec::new(),
                project,
                agg,
            })),
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let Some(lchain) = as_chain(left)? else {
                    return Ok(None);
                };
                let Some(rchain) = as_chain(right)? else {
                    return Ok(None);
                };
                let Some(lk) = lchain.schema.index_of(left_key) else {
                    return Ok(None);
                };
                let Some(rk) = rchain.schema.index_of(right_key) else {
                    return Ok(None);
                };
                let core_schema = lchain.schema.join(&rchain.schema);
                Ok(Some(DeltaPlan {
                    core: CoreShape::Join {
                        left: lchain,
                        right: rchain,
                        left_key: lk,
                        right_key: rk,
                    },
                    core_schema,
                    post_filters: filters,
                    project,
                    agg,
                }))
            }
            _ => Ok(None),
        }
    }

    /// Apply the post-core pipeline — filters above a join core, then the
    /// projection — to core-shaped rows (filtered scan rows for a linear
    /// core, joined left ++ right rows for a join core). The result feeds
    /// the view's materialized rows, or [`AggState::absorb`] when an
    /// aggregate head exists.
    pub fn apply_post(&self, rows: impl IntoIterator<Item = Row>) -> Vec<Row> {
        rows.into_iter()
            .filter(|r| {
                self.post_filters
                    .iter()
                    .all(|p| BoundExpr::is_true(&p.eval_row(r)))
            })
            .map(|r| match &self.project {
                Some(exprs) => exprs.iter().map(|e| e.eval_row(&r)).collect(),
                None => r,
            })
            .collect()
    }

    /// Catalog tables this delta plan reads, left side first.
    pub fn tables(&self) -> Vec<&str> {
        match &self.core {
            CoreShape::Linear(c) => vec![c.table.as_str()],
            CoreShape::Join { left, right, .. } => {
                vec![left.table.as_str(), right.table.as_str()]
            }
        }
    }
}

/// `Filter* Scan`, with the filters bound against the scan schema
/// (filters preserve schema, so every predicate binds against it).
fn as_chain(plan: &LogicalPlan) -> Result<Option<ScanChain>, PlanError> {
    let mut filters = Vec::new();
    let mut cur = plan;
    while let LogicalPlan::Filter { input, predicate } = cur {
        let in_schema = input.schema()?;
        filters.push(BoundExpr::bind(predicate, &in_schema)?);
        cur = input;
    }
    match cur {
        LogicalPlan::Scan { table, schema } => Ok(Some(ScanChain {
            table: table.clone(),
            schema: Arc::clone(schema),
            filters,
        })),
        _ => Ok(None),
    }
}

/// Live accumulator state of an aggregate view: one [`Acc`] vector per
/// group, absorbing insert-only deltas via the exact accumulators the
/// batch engine's `HashAggExec` uses — so a snapshot is bit-identical to
/// what a full recompute would produce (modulo row order), including the
/// engine's no-rows-no-groups behavior on empty input.
pub struct AggState {
    group_by: Vec<usize>,
    aggs: Vec<BoundAgg>,
    groups: HashMap<GroupKey, Vec<Acc>>,
}

impl AggState {
    pub fn new(shape: &AggShape) -> AggState {
        AggState {
            group_by: shape.group_by.clone(),
            aggs: shape.aggs.clone(),
            groups: HashMap::new(),
        }
    }

    /// Absorb a batch of post-pipeline rows into the accumulators.
    pub fn absorb(&mut self, rows: &[Row]) {
        for row in rows {
            let key = GroupKey(self.group_by.iter().map(|&i| row[i].clone()).collect());
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|a| Acc::new(a.func)).collect());
            for (acc, spec) in accs.iter_mut().zip(&self.aggs) {
                acc.update(spec.input.map(|i| &row[i]));
            }
        }
    }

    /// Emit the current result rows (group key columns, then one value per
    /// aggregate — the engine's aggregate output layout).
    pub fn snapshot(&self) -> Vec<Row> {
        self.groups
            .iter()
            .map(|(key, accs)| {
                let mut row = key.0.clone();
                row.extend(accs.iter().map(|a| a.finish()));
                row
            })
            .collect()
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, AggSpec};
    use rowstore::{DataType, Field, Value};

    fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            schema: Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("v", DataType::Int64),
            ]),
        }
    }

    #[test]
    fn filter_project_scan_is_linear() {
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("t")),
                predicate: col("v").gt(lit(5i64)),
            }),
            exprs: vec![(col("k"), "k".into())],
        };
        let d = DeltaPlan::derive(&plan).expect("supported shape");
        assert!(matches!(&d.core, CoreShape::Linear(c) if c.filters.len() == 1));
        assert_eq!(d.tables(), vec!["t"]);

        // Delta application: filter keeps v > 5, project keeps only k.
        let chain = match &d.core {
            CoreShape::Linear(c) => c,
            _ => unreachable!(),
        };
        let delta = vec![
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(2), Value::Int64(3)],
        ];
        let out = d.apply_post(chain.apply(&delta));
        assert_eq!(out, vec![vec![Value::Int64(1)]]);
    }

    #[test]
    fn join_of_chains_is_supported() {
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("a")),
                predicate: col("v").lt(lit(100i64)),
            }),
            right: Box::new(scan("b")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let d = DeltaPlan::derive(&plan).expect("supported shape");
        assert!(matches!(&d.core, CoreShape::Join { left, .. } if left.filters.len() == 1));
        assert_eq!(d.tables(), vec!["a", "b"]);
        assert_eq!(d.core_schema.arity(), 4);
    }

    #[test]
    fn aggregate_head_binds_accumulators() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_by: vec!["k".into()],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Count,
                    input: None,
                    out_name: "n".into(),
                },
                AggSpec {
                    func: AggFunc::Sum,
                    input: Some("v".into()),
                    out_name: "s".into(),
                },
            ],
        };
        let d = DeltaPlan::derive(&plan).expect("supported shape");
        let shape = d.agg.as_ref().expect("aggregate head");
        let mut state = AggState::new(shape);
        state.absorb(&[
            vec![Value::Int64(1), Value::Int64(10)],
            vec![Value::Int64(1), Value::Int64(5)],
            vec![Value::Int64(2), Value::Int64(7)],
        ]);
        assert_eq!(state.num_groups(), 2);
        let mut rows = state.snapshot();
        rows.sort_by_key(|r| r[0].as_i64().unwrap());
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Int64(2), Value::Int64(15)],
                vec![Value::Int64(2), Value::Int64(1), Value::Int64(7)],
            ]
        );
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        // Sort on top.
        let sorted = LogicalPlan::Sort {
            input: Box::new(scan("t")),
            keys: vec![("k".into(), false)],
        };
        assert!(DeltaPlan::derive(&sorted).is_none());
        // Limit.
        let limited = LogicalPlan::Limit {
            input: Box::new(scan("t")),
            n: 5,
        };
        assert!(DeltaPlan::derive(&limited).is_none());
        // Join of a join (nested non-chain side).
        let nested = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Join {
                left: Box::new(scan("a")),
                right: Box::new(scan("b")),
                left_key: "k".into(),
                right_key: "k".into(),
            }),
            right: Box::new(scan("c")),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        assert!(DeltaPlan::derive(&nested).is_none());
    }
}
