//! The user-facing DataFrame API (the Dataframe half of Fig. 2).
//!
//! A [`DataFrame`] is a lazily-built logical plan bound to a session
//! [`Context`]; `collect`/`count` trigger optimization, physical planning
//! (including any registered extension rules) and cluster execution.

use crate::context::Context;
use crate::expr::{col, Expr, PlanError};
use crate::optimizer::optimize;
use crate::physical::{gather, ExecPlan};
use crate::plan::{AggFunc, AggSpec, LogicalPlan};
use crate::planner::Planner;
use rowstore::{Row, Schema};
use std::sync::Arc;

impl Context {
    /// Start a DataFrame from a registered table.
    pub fn table(self: &Arc<Self>, name: &str) -> Result<DataFrame, PlanError> {
        let provider = self.provider(name)?;
        Ok(DataFrame {
            plan: LogicalPlan::Scan {
                table: name.to_string(),
                schema: provider.schema(),
            },
            ctx: Arc::clone(self),
        })
    }

    /// Parse and plan a SQL query.
    pub fn sql(self: &Arc<Self>, query: &str) -> Result<DataFrame, PlanError> {
        let plan = crate::sql::parse_query(query, self)?;
        Ok(DataFrame {
            plan,
            ctx: Arc::clone(self),
        })
    }
}

/// A lazily evaluated, distributed collection of rows.
#[derive(Clone)]
pub struct DataFrame {
    plan: LogicalPlan,
    ctx: Arc<Context>,
}

impl DataFrame {
    /// Wrap an explicit logical plan (extension crates use this).
    pub fn from_plan(plan: LogicalPlan, ctx: Arc<Context>) -> DataFrame {
        DataFrame { plan, ctx }
    }

    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    pub fn context(&self) -> &Arc<Context> {
        &self.ctx
    }

    /// Output schema of this frame.
    pub fn schema(&self) -> Result<Arc<Schema>, PlanError> {
        self.plan.schema()
    }

    /// Keep rows satisfying `predicate`.
    pub fn filter(self, predicate: Expr) -> DataFrame {
        DataFrame {
            plan: LogicalPlan::Filter {
                input: Box::new(self.plan),
                predicate,
            },
            ctx: self.ctx,
        }
    }

    /// Project named columns.
    pub fn select(self, columns: &[&str]) -> DataFrame {
        let exprs = columns.iter().map(|c| (col(*c), c.to_string())).collect();
        DataFrame {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
            },
            ctx: self.ctx,
        }
    }

    /// Project computed expressions with output names.
    pub fn select_exprs(self, exprs: Vec<(Expr, String)>) -> DataFrame {
        DataFrame {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
            },
            ctx: self.ctx,
        }
    }

    /// Inner equi-join with another frame on `left_key = right_key`.
    pub fn join(self, right: DataFrame, left_key: &str, right_key: &str) -> DataFrame {
        DataFrame {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                left_key: left_key.to_string(),
                right_key: right_key.to_string(),
            },
            ctx: self.ctx,
        }
    }

    /// Group by columns; finish with [`GroupedFrame::agg`].
    pub fn group_by(self, columns: &[&str]) -> GroupedFrame {
        GroupedFrame {
            df: self,
            keys: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Sort by columns; each key is `(column, descending)`. Nulls last.
    pub fn sort(self, keys: &[(&str, bool)]) -> DataFrame {
        DataFrame {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys: keys.iter().map(|(k, d)| (k.to_string(), *d)).collect(),
            },
            ctx: self.ctx,
        }
    }

    /// Take the first `n` rows.
    pub fn limit(self, n: usize) -> DataFrame {
        DataFrame {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                n,
            },
            ctx: self.ctx,
        }
    }

    /// Optimize + plan physically (exposed for `explain` and tests).
    pub fn physical_plan(&self) -> Result<Arc<dyn ExecPlan>, PlanError> {
        let optimized = optimize(self.plan.clone());
        Planner::new().plan(&optimized, &self.ctx)
    }

    /// Execute and gather all rows to the driver. Execution failures (a
    /// stage exhausting its task retries) surface as [`PlanError::Exec`].
    pub fn collect(&self) -> Result<Vec<Row>, PlanError> {
        let phys = self.physical_plan()?;
        Ok(gather(phys.execute(&self.ctx)?))
    }

    /// Execute and return partitioned results (no driver gather).
    pub fn collect_partitions(&self) -> Result<Vec<Vec<Row>>, PlanError> {
        let phys = self.physical_plan()?;
        Ok(phys.execute(&self.ctx)?)
    }

    /// Execute and count rows.
    pub fn count(&self) -> Result<usize, PlanError> {
        Ok(self.collect_partitions()?.iter().map(Vec::len).sum())
    }

    /// Execute and return the rows together with the engine metrics this
    /// query moved (EXPLAIN ANALYZE's little sibling): shuffle volume,
    /// build/probe/recompute time, broadcast bytes.
    pub fn analyze(&self) -> Result<(Vec<Row>, sparklet::MetricsSnapshot), PlanError> {
        let before = self.ctx.cluster().metrics().snapshot();
        let rows = self.collect()?;
        let delta = self.ctx.cluster().metrics().snapshot().delta_since(&before);
        Ok((rows, delta))
    }

    /// Render the logical and physical plans.
    pub fn explain(&self) -> Result<String, PlanError> {
        let optimized = optimize(self.plan.clone());
        let phys = Planner::new().plan(&optimized, &self.ctx)?;
        Ok(format!(
            "== Logical ==\n{}== Physical ==\n{}",
            optimized.display_indent(),
            phys.describe(0)
        ))
    }
}

/// A frame with pending grouping keys.
pub struct GroupedFrame {
    df: DataFrame,
    keys: Vec<String>,
}

impl GroupedFrame {
    /// Apply aggregate functions: `(func, input column or None, out name)`.
    pub fn agg(self, aggs: Vec<(AggFunc, Option<&str>, &str)>) -> DataFrame {
        let aggs = aggs
            .into_iter()
            .map(|(func, input, out)| AggSpec {
                func,
                input: input.map(str::to_string),
                out_name: out.to_string(),
            })
            .collect();
        DataFrame {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.df.plan),
                group_by: self.keys,
                aggs,
            },
            ctx: self.df.ctx,
        }
    }

    /// Shorthand for `COUNT(*) AS count`.
    pub fn count(self) -> DataFrame {
        self.agg(vec![(AggFunc::Count, None, "count")])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use crate::expr::lit;
    use rowstore::{DataType, Field, Value};
    use sparklet::{Cluster, ClusterConfig};

    fn ctx() -> Arc<Context> {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]);
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i % 4),
                    Value::Utf8(format!("u{i}")),
                ]
            })
            .collect();
        ctx.register_table("users", Arc::new(ColumnarTable::from_rows(schema, rows, 4)));
        let ref_schema = Schema::new(vec![
            Field::new("grp", DataType::Int64),
            Field::new("label", DataType::Utf8),
        ]);
        let refs: Vec<Row> = (0..4)
            .map(|g| vec![Value::Int64(g), Value::Utf8(format!("g{g}"))])
            .collect();
        ctx.register_table(
            "groups",
            Arc::new(ColumnarTable::from_rows(ref_schema, refs, 2)),
        );
        ctx
    }

    #[test]
    fn filter_select_collect() {
        let ctx = ctx();
        let rows = ctx
            .table("users")
            .unwrap()
            .filter(col("id").lt(lit(10i64)))
            .select(&["name"])
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn join_api() {
        let ctx = ctx();
        let users = ctx.table("users").unwrap();
        let groups = ctx.table("groups").unwrap();
        let joined = users.join(groups, "grp", "grp");
        assert_eq!(joined.count().unwrap(), 100);
        let schema = joined.schema().unwrap();
        assert_eq!(schema.arity(), 5);
        assert_eq!(schema.field(3).name, "right.grp");
    }

    #[test]
    fn group_by_count() {
        let ctx = ctx();
        let mut rows = ctx
            .table("users")
            .unwrap()
            .group_by(&["grp"])
            .count()
            .collect()
            .unwrap();
        rows.sort_by_key(|r| r[0].as_i64().unwrap());
        assert_eq!(rows.len(), 4);
        for r in rows {
            assert_eq!(r[1], Value::Int64(25));
        }
    }

    #[test]
    fn limit_api() {
        let ctx = ctx();
        assert_eq!(ctx.table("users").unwrap().limit(7).count().unwrap(), 7);
    }

    #[test]
    fn explain_shows_both_plans() {
        let ctx = ctx();
        let text = ctx
            .table("users")
            .unwrap()
            .filter(col("id").eq(lit(5i64)))
            .explain()
            .unwrap();
        assert!(text.contains("== Logical =="));
        assert!(text.contains("== Physical =="));
        assert!(text.contains("ColumnarPipeline"));
    }

    #[test]
    fn unknown_table_errors() {
        let ctx = ctx();
        assert!(matches!(ctx.table("nope"), Err(PlanError::UnknownTable(_))));
    }

    #[test]
    fn unknown_column_errors_at_collect() {
        let ctx = ctx();
        let res = ctx
            .table("users")
            .unwrap()
            .filter(col("missing").eq(lit(1i64)))
            .collect();
        assert!(matches!(res, Err(PlanError::UnknownColumn(_))));
    }
}
