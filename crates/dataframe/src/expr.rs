//! Expressions: the building blocks of filters, projections and join keys.
//!
//! Unresolved [`Expr`]s reference columns by name (what the SQL parser and
//! the DataFrame API produce); binding against a schema yields a
//! [`BoundExpr`] that evaluates positionally against either materialized
//! rows or columnar partitions. Comparison and logical operators follow SQL
//! three-valued logic (nulls propagate; filters keep only `TRUE`).

use crate::column::ColumnarPartition;
use rowstore::{Schema, Value};
use std::cmp::Ordering;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// An unresolved expression tree (columns by name).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Col(String),
    Lit(Value),
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
}

/// Reference a column by name.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

macro_rules! expr_binop {
    ($name:ident, $op:expr) => {
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Binary {
                left: Box::new(self),
                op: $op,
                right: Box::new(rhs),
            }
        }
    };
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div build Expr trees, not arithmetic
impl Expr {
    expr_binop!(eq, BinOp::Eq);
    expr_binop!(not_eq, BinOp::NotEq);
    expr_binop!(lt, BinOp::Lt);
    expr_binop!(lt_eq, BinOp::LtEq);
    expr_binop!(gt, BinOp::Gt);
    expr_binop!(gt_eq, BinOp::GtEq);
    expr_binop!(and, BinOp::And);
    expr_binop!(or, BinOp::Or);
    expr_binop!(add, BinOp::Add);
    expr_binop!(sub, BinOp::Sub);
    expr_binop!(mul, BinOp::Mul);
    expr_binop!(div, BinOp::Div);

    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    pub fn is_not_null(self) -> Expr {
        Expr::IsNotNull(Box::new(self))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Fold constant subtrees (`1 + 2` → `3`). One of the stock Catalyst
    /// optimizations the paper's rules coexist with.
    pub fn fold(self) -> Expr {
        match self {
            Expr::Binary { left, op, right } => {
                let left = left.fold();
                let right = right.fold();
                if let (Expr::Lit(l), Expr::Lit(r)) = (&left, &right) {
                    return Expr::Lit(eval_binary(l.clone(), op, r.clone()));
                }
                Expr::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                }
            }
            Expr::Not(e) => {
                let e = e.fold();
                if let Expr::Lit(v) = &e {
                    return Expr::Lit(eval_not(v.clone()));
                }
                Expr::Not(Box::new(e))
            }
            Expr::IsNull(e) => {
                let e = e.fold();
                if let Expr::Lit(v) = &e {
                    return Expr::Lit(Value::Bool(v.is_null()));
                }
                Expr::IsNull(Box::new(e))
            }
            Expr::IsNotNull(e) => {
                let e = e.fold();
                if let Expr::Lit(v) = &e {
                    return Expr::Lit(Value::Bool(!v.is_null()));
                }
                Expr::IsNotNull(Box::new(e))
            }
            other => other,
        }
    }

    /// Column names referenced by this expression.
    pub fn referenced(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced(out);
                right.referenced(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.referenced(out),
        }
    }

    /// If this is `col = literal` (either order), return (name, value).
    /// The shape the paper's index-lookup rule recognizes.
    pub fn as_eq_literal(&self) -> Option<(&str, &Value)> {
        if let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = self
        {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Col(n), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(n)) => {
                    return Some((n, v));
                }
                _ => {}
            }
        }
        None
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
        }
    }
}

/// Errors from binding, planning, or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    UnknownColumn(String),
    UnknownTable(String),
    Parse(String),
    Unsupported(String),
    /// Physical execution failed (a stage exhausted its task retries).
    Exec(crate::physical::ExecError),
    /// The table cannot be deregistered while a running query pins it.
    TablePinned(String),
    /// The admission controller rejected the submission (queue full, or
    /// cancelled while waiting for a slot).
    Admission(String),
    /// The session driver itself failed (e.g. a panic escaped query
    /// execution); carries the rendered panic payload. The query's
    /// resources (admission slot, table pins) are still released.
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            PlanError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PlanError::Parse(m) => write!(f, "SQL parse error: {m}"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
            PlanError::Exec(e) => write!(f, "{e}"),
            PlanError::TablePinned(t) => {
                write!(f, "table {t} is pinned by a running query")
            }
            PlanError::Admission(m) => write!(f, "admission rejected: {m}"),
            PlanError::Internal(m) => write!(f, "internal driver error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<crate::physical::ExecError> for PlanError {
    fn from(e: crate::physical::ExecError) -> Self {
        PlanError::Exec(e)
    }
}

impl From<sparklet::StageError> for PlanError {
    fn from(e: sparklet::StageError) -> Self {
        PlanError::Exec(crate::physical::ExecError::Stage(e))
    }
}

/// A schema-resolved expression evaluating by column position.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Binary {
        left: Box<BoundExpr>,
        op: BinOp,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    IsNotNull(Box<BoundExpr>),
}

impl BoundExpr {
    /// Resolve `expr` against `schema`.
    pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr, PlanError> {
        Ok(match expr {
            Expr::Col(name) => BoundExpr::Col(
                schema
                    .index_of(name)
                    .ok_or_else(|| PlanError::UnknownColumn(name.clone()))?,
            ),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(BoundExpr::bind(left, schema)?),
                op: *op,
                right: Box::new(BoundExpr::bind(right, schema)?),
            },
            Expr::Not(e) => BoundExpr::Not(Box::new(BoundExpr::bind(e, schema)?)),
            Expr::IsNull(e) => BoundExpr::IsNull(Box::new(BoundExpr::bind(e, schema)?)),
            Expr::IsNotNull(e) => BoundExpr::IsNotNull(Box::new(BoundExpr::bind(e, schema)?)),
        })
    }

    /// Evaluate against a materialized row.
    pub fn eval_row(&self, row: &[Value]) -> Value {
        match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Binary { left, op, right } => {
                eval_binary(left.eval_row(row), *op, right.eval_row(row))
            }
            BoundExpr::Not(e) => eval_not(e.eval_row(row)),
            BoundExpr::IsNull(e) => Value::Bool(e.eval_row(row).is_null()),
            BoundExpr::IsNotNull(e) => Value::Bool(!e.eval_row(row).is_null()),
        }
    }

    /// Evaluate against row `i` of a columnar partition, touching only the
    /// referenced columns (the columnar fast path).
    pub fn eval_columnar(&self, part: &ColumnarPartition, i: usize) -> Value {
        match self {
            BoundExpr::Col(c) => part.column(*c).value(i),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Binary { left, op, right } => eval_binary(
                left.eval_columnar(part, i),
                *op,
                right.eval_columnar(part, i),
            ),
            BoundExpr::Not(e) => eval_not(e.eval_columnar(part, i)),
            BoundExpr::IsNull(e) => Value::Bool(e.eval_columnar(part, i).is_null()),
            BoundExpr::IsNotNull(e) => Value::Bool(!e.eval_columnar(part, i).is_null()),
        }
    }

    /// Evaluate against a codec-encoded row, decoding only the referenced
    /// columns (the row-store filter fast path: no full materialization).
    pub fn eval_encoded(&self, schema: &Schema, bytes: &[u8]) -> Value {
        match self {
            BoundExpr::Col(i) => {
                rowstore::codec::decode_column(schema, bytes, *i).unwrap_or(Value::Null)
            }
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Binary { left, op, right } => eval_binary(
                left.eval_encoded(schema, bytes),
                *op,
                right.eval_encoded(schema, bytes),
            ),
            BoundExpr::Not(e) => eval_not(e.eval_encoded(schema, bytes)),
            BoundExpr::IsNull(e) => Value::Bool(e.eval_encoded(schema, bytes).is_null()),
            BoundExpr::IsNotNull(e) => Value::Bool(!e.eval_encoded(schema, bytes).is_null()),
        }
    }

    /// Whether the value is SQL-true (filters keep only these rows).
    #[inline]
    pub fn is_true(v: &Value) -> bool {
        matches!(v, Value::Bool(true))
    }

    /// Vectorized evaluation: one dense output slot per row selected by
    /// `sel`, computed by typed batch kernels instead of a per-row tree
    /// walk. Semantics match `eval_row` exactly (see [`crate::vector`]);
    /// callers must have checked [`BoundExpr::batch_compatible`].
    pub fn eval_batch(
        &self,
        part: &ColumnarPartition,
        sel: &crate::vector::SelVec,
    ) -> crate::column::ColumnVec {
        crate::vector::eval_batch(self, part, sel)
    }

    /// Whether the batch kernels cover this expression against `schema`.
    /// When false, plan nodes keep the row-at-a-time path (today only
    /// `NOT` over a statically non-boolean operand, which must keep the
    /// row path's panic behaviour).
    pub fn batch_compatible(&self, schema: &Schema) -> bool {
        crate::vector::batch_kind(self, schema).is_some()
    }
}

fn eval_not(v: Value) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        Value::Null => Value::Null,
        other => panic!("NOT applied to non-boolean {other:?}"),
    }
}

/// SQL-semantics binary evaluation (null-propagating, 3VL for AND/OR).
pub fn eval_binary(l: Value, op: BinOp, r: Value) -> Value {
    use BinOp::*;
    match op {
        And => match (l.as_bool(), r.as_bool()) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        Or => match (l.as_bool(), r.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => match l.sql_cmp(&r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            }),
        },
        Add | Sub | Mul | Div => arith(l, op, r),
    }
}

fn arith(l: Value, op: BinOp, r: Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Float if either side is float; otherwise integer.
    let float = matches!(l, Value::Float64(_)) || matches!(r, Value::Float64(_));
    if float {
        let (a, b) = match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Value::Null,
        };
        Value::Float64(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            _ => unreachable!(),
        })
    } else {
        let (a, b) = match (l.as_i64(), r.as_i64()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Value::Null,
        };
        if matches!(op, BinOp::Div) && b == 0 {
            return Value::Null;
        }
        Value::Int64(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a / b,
            _ => unreachable!(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowstore::{DataType, Field};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::nullable("c", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int64(10),
            Value::Int64(3),
            Value::Null,
            Value::Utf8("hi".into()),
        ]
    }

    fn eval(e: Expr) -> Value {
        BoundExpr::bind(&e, &schema()).unwrap().eval_row(&row())
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval(col("a").gt(lit(5i64))), Value::Bool(true));
        assert_eq!(eval(col("a").lt(col("b"))), Value::Bool(false));
        assert_eq!(eval(col("s").eq(lit("hi"))), Value::Bool(true));
        assert_eq!(
            eval(col("c").eq(lit(0.0))),
            Value::Null,
            "null comparison is null"
        );
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
        assert_eq!(
            eval(col("c").is_null().and(col("a").eq(lit(10i64)))),
            Value::Bool(true)
        );
        assert_eq!(
            eval(col("c").eq(lit(1.0)).and(lit(false))),
            Value::Bool(false)
        );
        assert_eq!(eval(col("c").eq(lit(1.0)).and(lit(true))), Value::Null);
        assert_eq!(eval(col("c").eq(lit(1.0)).or(lit(true))), Value::Bool(true));
        assert_eq!(eval(col("c").eq(lit(1.0)).not()), Value::Null);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval(col("a").add(col("b"))), Value::Int64(13));
        assert_eq!(eval(col("a").div(col("b"))), Value::Int64(3));
        assert_eq!(
            eval(col("a").div(lit(0i64))),
            Value::Null,
            "div by zero → null"
        );
        assert_eq!(eval(col("a").mul(lit(2.5))), Value::Float64(25.0));
        assert_eq!(eval(col("c").add(lit(1i64))), Value::Null);
    }

    #[test]
    fn null_checks() {
        assert_eq!(eval(col("c").is_null()), Value::Bool(true));
        assert_eq!(eval(col("a").is_not_null()), Value::Bool(true));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let err = BoundExpr::bind(&col("zzz"), &schema()).unwrap_err();
        assert_eq!(err, PlanError::UnknownColumn("zzz".into()));
    }

    #[test]
    fn constant_folding() {
        let folded = lit(1i64).add(lit(2i64)).mul(lit(3i64)).fold();
        assert_eq!(folded, Expr::Lit(Value::Int64(9)));
        // Non-constant parts survive.
        let folded = col("a").add(lit(1i64).add(lit(1i64))).fold();
        assert_eq!(folded, col("a").add(lit(2i64)));
    }

    #[test]
    fn eq_literal_detection() {
        let e = col("k").eq(lit(5i64));
        let (n, v) = e.as_eq_literal().unwrap();
        assert_eq!(n, "k");
        assert_eq!(v, &Value::Int64(5));
        // Reversed order too.
        let e = lit(5i64).eq(col("k"));
        assert!(e.as_eq_literal().is_some());
        // Non-eq shapes do not match.
        assert!(col("k").gt(lit(5i64)).as_eq_literal().is_none());
    }

    #[test]
    fn columnar_eval_matches_row_eval() {
        let s = schema();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Int64(i % 5),
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64)
                    },
                    Value::Utf8(format!("s{i}")),
                ]
            })
            .collect();
        let part = ColumnarPartition::from_rows(&s, &rows);
        let exprs = vec![
            col("a").gt(lit(7i64)),
            col("b").eq(lit(2i64)).and(col("c").is_not_null()),
            col("a").add(col("b")).mul(lit(2i64)),
            col("s").eq(lit("s4")),
        ];
        for e in exprs {
            let b = BoundExpr::bind(&e, &s).unwrap();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(b.eval_row(r), b.eval_columnar(&part, i), "expr {e} row {i}");
            }
        }
    }

    #[test]
    fn display_renders() {
        let e = col("a").gt(lit(5i64)).and(col("s").eq(lit("x")));
        assert_eq!(e.to_string(), "((a > 5) AND (s = x))");
    }
}
