//! SQL sessions: asynchronous query submission over the shared cluster.
//!
//! [`Context::submit_sql`] turns the one-shot `ctx.sql(..).collect()` path
//! into a *serving* interface: the statement is parsed, optimized and
//! physically planned synchronously (snapshotting the provider set — DDL
//! after submission cannot tear the running query), admission control is
//! consulted (typed rejection when the wait queue is full), and execution
//! proceeds on a background driver thread attributed to a scheduler
//! [`QueryRef`] so its tasks interleave fairly with other queries'. The
//! returned [`QueryHandle`] supports `poll` / `wait` / `cancel`.
//!
//! Per-session observability (all in the cluster registry, asserted in
//! `tests/metrics_e2e.rs`):
//!
//! * `session.queue_ns` — histogram of submit → admission latency;
//! * `session.exec_ns` — histogram of admission → completion latency;
//! * `session.admitted` / `session.rejected` / `session.cancelled` —
//!   admission outcomes.

use crate::expr::PlanError;
use crate::physical::{gather, ExecError};
use rowstore::Row;
use sparklet::{Admission, AdmitError, QueryRef, StageError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::context::{Context, TablePinGuard};

/// Shared completion slot between the driver thread and the handle.
///
/// Also owns the query's [`TablePinGuard`]: the pins live here (not as a
/// plain local of the driver thread) so that *every* way a query can end
/// — normal completion, admission rejection, cancellation, or a panic
/// escaping execution — releases them through the same `finish` path.
#[derive(Default)]
struct HandleShared {
    result: Mutex<Option<Result<Vec<Row>, PlanError>>>,
    done: Condvar,
    pins: Mutex<Option<TablePinGuard>>,
}

impl HandleShared {
    fn finish(&self, result: Result<Vec<Row>, PlanError>) {
        // Release table pins before publishing the result: a waiter that
        // observes completion may immediately deregister the table.
        drop(self.pins.lock().unwrap().take());
        *self.result.lock().unwrap() = Some(result);
        self.done.notify_all();
    }
}

/// Render a panic payload the way `std` would print it.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "query driver panicked".to_string())
}

/// Handle to a query submitted with [`Context::submit_sql`].
pub struct QueryHandle {
    shared: Arc<HandleShared>,
    query: QueryRef,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("query", &self.query.id())
            .field("finished", &self.shared.result.lock().unwrap().is_some())
            .finish()
    }
}

impl QueryHandle {
    /// The scheduler-wide query id.
    pub fn id(&self) -> u64 {
        self.query.id()
    }

    /// Non-blocking: `Some(result)` once the query finished (the result
    /// stays available for repeated polls), `None` while it runs.
    pub fn poll(&self) -> Option<Result<Vec<Row>, PlanError>> {
        self.shared.result.lock().unwrap().clone()
    }

    /// Block until the query finishes and return its result.
    pub fn wait(&self) -> Result<Vec<Row>, PlanError> {
        let mut slot = self.shared.result.lock().unwrap();
        while slot.is_none() {
            slot = self.shared.done.wait(slot).unwrap();
        }
        slot.as_ref().expect("slot filled").clone()
    }

    /// Request cooperative cancellation: a query waiting for admission
    /// aborts immediately; a running query fails at its next task
    /// dispatch / queued-task pop (tasks already running finish). A
    /// query that already completed keeps its result.
    pub fn cancel(&self) {
        self.query.cancel();
    }

    pub fn is_cancelled(&self) -> bool {
        self.query.is_cancelled()
    }
}

impl Drop for QueryHandle {
    /// Dropping the last observer of an unfinished query cancels it:
    /// nobody can consume the result, so holding its admission slot and
    /// table pins any longer only starves other queries. A query still
    /// queued for admission aborts immediately (releasing its pins); a
    /// running query fails at its next task dispatch. Finished queries
    /// are unaffected.
    fn drop(&mut self) {
        if self.shared.result.lock().unwrap().is_none() {
            self.query.cancel();
        }
    }
}

fn is_cancellation(err: &PlanError) -> bool {
    matches!(
        err,
        PlanError::Exec(ExecError::Stage(StageError::Cancelled { .. }))
    )
}

impl Context {
    /// Submit a SQL statement for asynchronous execution. Planning —
    /// including snapshotting every scanned table's provider into the
    /// physical plan — happens synchronously, so the returned handle's
    /// result is immune to concurrent `register_table` /
    /// `deregister_table` calls. Admission is also decided synchronously
    /// when the queue is full: the typed [`PlanError::Admission`] is
    /// returned instead of a handle.
    pub fn submit_sql(self: &Arc<Self>, sql: &str) -> Result<QueryHandle, PlanError> {
        self.submit_sql_weighted(sql, 1)
    }

    /// [`Context::submit_sql`] with an explicit fairness weight: the
    /// scheduler serves `weight` consecutive tasks of this query per
    /// round-robin turn (≥1; higher = larger share of the pool).
    pub fn submit_sql_weighted(
        self: &Arc<Self>,
        sql: &str,
        weight: u32,
    ) -> Result<QueryHandle, PlanError> {
        let df = self.sql(sql)?;
        // Provider snapshot: ScanExec nodes hold their `Arc<dyn
        // TableProvider>` from this point on.
        let phys = df.physical_plan()?;
        let pins = self.pin_tables(df.plan().referenced_tables());

        let scheduler = self.cluster().scheduler();
        let registry = self.cluster().registry();
        let query = scheduler.new_query(weight);
        let admission = match scheduler.try_admit(&query) {
            Ok(a) => a,
            Err(e) => {
                registry.counter("session.rejected").inc();
                return Err(PlanError::Admission(e.to_string()));
            }
        };

        let shared = Arc::new(HandleShared::default());
        *shared.pins.lock().unwrap() = Some(pins);
        let handle = QueryHandle {
            shared: Arc::clone(&shared),
            query: query.clone(),
        };
        let ctx = Arc::clone(self);
        let submitted = Instant::now();
        #[cfg(test)]
        let sql_probe = sql.to_string();
        // Detached driver thread: owns the admission wait (so `submit_sql`
        // never blocks) and the execution itself. The table pins live in
        // `shared` and are released by `finish` on every exit path,
        // including a panic escaping execution.
        std::thread::spawn(move || {
            let registry = ctx.cluster().registry();
            let admitted = match admission {
                Admission::Ready(guard) => Ok(guard),
                Admission::Queued(ticket) => ticket.wait(),
            };
            registry
                .histogram("session.queue_ns")
                .record(submitted.elapsed().as_nanos() as u64);
            let result = match admitted {
                Err(e) => {
                    if matches!(e, AdmitError::Cancelled { .. }) {
                        registry.counter("session.cancelled").inc();
                    } else {
                        registry.counter("session.rejected").inc();
                    }
                    Err(PlanError::Admission(e.to_string()))
                }
                Ok(_slot) => {
                    registry.counter("session.admitted").inc();
                    let exec_start = Instant::now();
                    // Worker-task panics are already converted to typed
                    // `StageError`s by the cluster; this guards the driver
                    // side (planning glue, gather, provider code running on
                    // this thread). Without it a panic here would leave
                    // `finish` uncalled: waiters would block forever and the
                    // table pins would leak until process exit.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(test)]
                        tests::inject_test_panic(&sql_probe);
                        ctx.cluster().with_query(&query, || {
                            phys.execute(&ctx).map(gather).map_err(PlanError::from)
                        })
                    }));
                    registry
                        .histogram("session.exec_ns")
                        .record(exec_start.elapsed().as_nanos() as u64);
                    let result = match outcome {
                        Ok(r) => r,
                        Err(payload) => {
                            registry.counter("session.driver_panics").inc();
                            Err(PlanError::Internal(panic_text(payload.as_ref())))
                        }
                    };
                    if result.as_ref().is_err_and(is_cancellation) {
                        registry.counter("session.cancelled").inc();
                    }
                    result
                    // `_slot` drops here: the admission slot frees and a
                    // queued query wakes up.
                }
            };
            shared.finish(result);
        });
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use rowstore::{DataType, Field, Schema, Value};
    use sparklet::{Cluster, ClusterConfig};

    /// Marker-based panic injection: a submitted statement containing
    /// this identifier panics on the driver thread right after
    /// admission. Keyed on the SQL text (not a global flag) so parallel
    /// tests in this module cannot trip each other's injection.
    pub(super) const PANIC_MARKER: &str = "panic_in_driver";

    pub(super) fn inject_test_panic(sql: &str) {
        if sql.contains(PANIC_MARKER) {
            panic!("injected driver panic");
        }
    }

    fn ctx_with_table(rows: i64) -> Arc<Context> {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let data: Vec<Row> = (0..rows)
            .map(|i| vec![Value::Int64(i % 10), Value::Int64(i)])
            .collect();
        ctx.register_table("t", Arc::new(ColumnarTable::from_rows(schema, data, 4)));
        ctx
    }

    #[test]
    fn submit_poll_wait_roundtrip() {
        let ctx = ctx_with_table(100);
        let handle = ctx.submit_sql("SELECT * FROM t WHERE k = 3").unwrap();
        let rows = handle.wait().unwrap();
        assert_eq!(rows.len(), 10);
        // Result is sticky: poll after wait still sees it.
        assert_eq!(handle.poll().unwrap().unwrap().len(), 10);
        // Matches the synchronous path bit for bit.
        let mut expect = ctx
            .sql("SELECT * FROM t WHERE k = 3")
            .unwrap()
            .collect()
            .unwrap();
        let mut got = rows;
        expect.sort_by_key(|r| format!("{r:?}"));
        got.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(got, expect);
    }

    #[test]
    fn submit_errors_on_unknown_table() {
        let ctx = ctx_with_table(10);
        let err = ctx.submit_sql("SELECT * FROM nope").unwrap_err();
        assert_eq!(err, PlanError::UnknownTable("nope".into()));
    }

    #[test]
    fn ddl_after_submit_cannot_tear_the_query() {
        let ctx = ctx_with_table(5000);
        let handle = ctx
            .submit_sql("SELECT k, count(*) AS n FROM t GROUP BY k")
            .unwrap();
        // Replace the provider mid-flight: the running query planned
        // against the old snapshot and must not notice.
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        ctx.register_table(
            "t",
            Arc::new(ColumnarTable::from_rows(
                schema,
                vec![vec![Value::Int64(0)]],
                1,
            )),
        );
        let rows = handle.wait().unwrap();
        assert_eq!(rows.len(), 10, "snapshot saw the original 10 groups");
    }

    #[test]
    fn deregister_fails_while_pinned_then_succeeds() {
        let ctx = ctx_with_table(2000);
        let handle = ctx
            .submit_sql("SELECT k, count(*) AS n FROM t GROUP BY k")
            .unwrap();
        // The pin is taken synchronously in submit_sql; if the query is
        // still running the deregister must fail typed, and once it
        // finishes the pin releases and deregistration succeeds.
        match ctx.deregister_table("t") {
            Err(PlanError::TablePinned(t)) => {
                assert_eq!(t, "t");
                handle.wait().unwrap();
                // Pins release when the driver thread finishes; give it
                // a moment.
                for _ in 0..500 {
                    if ctx.table_pin_count("t") == 0 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                assert!(ctx.deregister_table("t").unwrap().is_some());
            }
            // The query already finished and released its pin before we
            // got here — the deregister legitimately removed the table.
            Ok(Some(_)) => {
                handle.wait().unwrap();
            }
            other => panic!(
                "unexpected deregister outcome: {:?}",
                other.map(|o| o.is_some())
            ),
        }
    }

    #[test]
    fn admission_queue_full_rejects_synchronously() {
        let ctx = ctx_with_table(100);
        ctx.cluster().scheduler().set_admission_limits(1, 0);
        // Occupy the only slot out-of-band so the next submit must reject.
        let blocker = ctx.cluster().scheduler().new_query(1);
        let _slot = ctx.cluster().scheduler().admit(&blocker).unwrap();
        let err = ctx.submit_sql("SELECT * FROM t").unwrap_err();
        assert!(matches!(err, PlanError::Admission(_)), "got {err:?}");
        assert_eq!(
            ctx.cluster().registry().counter_value("session.rejected"),
            1
        );
        assert_eq!(ctx.table_pin_count("t"), 0, "rejected submit leaves no pin");
    }

    #[test]
    fn driver_panic_releases_pins_and_reports_internal() {
        let ctx = ctx_with_table(100);
        let handle = ctx
            .submit_sql(&format!("SELECT k AS {PANIC_MARKER} FROM t"))
            .unwrap();
        // The panic is caught on the driver thread and surfaced as a
        // typed internal error — `wait` must not hang.
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, PlanError::Internal(_)), "got {err:?}");
        assert_eq!(
            ctx.cluster()
                .registry()
                .counter_value("session.driver_panics"),
            1
        );
        // `finish` releases pins before publishing the result, so the
        // table is deregistrable as soon as `wait` returns.
        assert_eq!(ctx.table_pin_count("t"), 0, "panic path must release pins");
        assert!(ctx.deregister_table("t").unwrap().is_some());
    }

    #[test]
    fn dropping_queued_handle_cancels_and_releases_pins() {
        let ctx = ctx_with_table(100);
        ctx.cluster().scheduler().set_admission_limits(1, 4);
        // Occupy the only slot so the submitted query queues for
        // admission — the window where pins used to be unreclaimable.
        let blocker = ctx.cluster().scheduler().new_query(1);
        let slot = ctx.cluster().scheduler().admit(&blocker).unwrap();
        let handle = ctx.submit_sql("SELECT * FROM t").unwrap();
        assert_eq!(ctx.table_pin_count("t"), 1);
        drop(handle);
        // Dropping the unfinished handle cancels the query; the driver
        // thread aborts its admission wait and finishes, releasing the
        // pin without the blocker ever yielding its slot.
        for _ in 0..500 {
            if ctx.table_pin_count("t") == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(ctx.table_pin_count("t"), 0);
        assert!(ctx.deregister_table("t").unwrap().is_some());
        drop(slot);
    }

    #[test]
    fn cancel_while_queued_for_admission() {
        let ctx = ctx_with_table(100);
        ctx.cluster().scheduler().set_admission_limits(1, 4);
        let blocker = ctx.cluster().scheduler().new_query(1);
        let slot = ctx.cluster().scheduler().admit(&blocker).unwrap();
        let handle = ctx.submit_sql("SELECT * FROM t").unwrap();
        handle.cancel();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, PlanError::Admission(_)), "got {err:?}");
        drop(slot);
        assert!(ctx.cluster().registry().counter_value("session.cancelled") >= 1);
    }
}
