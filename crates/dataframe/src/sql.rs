//! A small SQL front-end.
//!
//! "Users write SQL queries or use the Dataframe API" (Fig. 2). This
//! module covers the query shapes of the paper's workloads (Table II):
//! single-table selects, two-table equi-joins, point predicates, grouped
//! aggregation and limits:
//!
//! ```sql
//! SELECT cols | agg(col) [AS name] ...
//! FROM table [alias]
//! [JOIN table2 [alias] ON a.x = b.y]
//! [WHERE predicate]
//! [GROUP BY cols]
//! [LIMIT n]
//! ```

use crate::context::Context;
use crate::expr::{BinOp, Expr, PlanError};
use crate::plan::{AggFunc, AggSpec, LogicalPlan};
use rowstore::Value;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>, PlanError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::NotEq);
                    i += 2;
                } else {
                    return Err(PlanError::Parse("lone '!'".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Tok::NotEq);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::GtEq);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(PlanError::Parse("unterminated string literal".into()));
                }
                toks.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && j + 1 < bytes.len()
                            && (bytes[j + 1] as char).is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    toks.push(Tok::Float(
                        text.parse()
                            .map_err(|_| PlanError::Parse(format!("bad number {text}")))?,
                    ));
                } else {
                    toks.push(Tok::Int(
                        text.parse()
                            .map_err(|_| PlanError::Parse(format!("bad number {text}")))?,
                    ));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push(Tok::Ident(input[start..j].to_string()));
                i = j;
            }
            other => return Err(PlanError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    ctx: &'a Arc<Context>,
}

#[derive(Debug)]
enum SelectItem {
    Wildcard,
    Expr {
        expr: Expr,
        name: String,
    },
    Agg {
        func: AggFunc,
        input: Option<String>,
        name: String,
    },
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), PlanError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(PlanError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), PlanError> {
        if *self.peek() == tok {
            self.pos += 1;
            Ok(())
        } else {
            Err(PlanError::Parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, PlanError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(PlanError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Possibly-qualified column name; the qualifier is dropped (schemas
    /// disambiguate duplicates with a `right.` prefix at join time).
    fn column_name(&mut self) -> Result<String, PlanError> {
        let first = self.ident()?;
        if *self.peek() == Tok::Dot {
            self.pos += 1;
            let second = self.ident()?;
            Ok(second.to_string()).inspect(|_s| {
                let _ = &first;
            })
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<LogicalPlan, PlanError> {
        self.expect_keyword("SELECT")?;
        let items = self.select_list()?;
        self.expect_keyword("FROM")?;
        let (table, _alias) = self.table_ref()?;
        let provider = self.ctx.provider(&table)?;
        let mut plan = LogicalPlan::Scan {
            table: table.clone(),
            schema: provider.schema(),
        };

        // Optional JOIN.
        if self.eat_keyword("JOIN") {
            let (right_table, _ralias) = self.table_ref()?;
            let right_provider = self.ctx.provider(&right_table)?;
            self.expect_keyword("ON")?;
            let k1 = self.column_name()?;
            self.expect(Tok::Eq)?;
            let k2 = self.column_name()?;
            // Assign keys to sides by schema membership.
            let left_schema = plan.schema()?;
            let (left_key, right_key) = if left_schema.index_of(&k1).is_some()
                && right_provider.schema().index_of(&k2).is_some()
            {
                (k1, k2)
            } else if left_schema.index_of(&k2).is_some()
                && right_provider.schema().index_of(&k1).is_some()
            {
                (k2, k1)
            } else {
                return Err(PlanError::Parse(format!(
                    "join keys {k1}/{k2} not found on respective sides"
                )));
            };
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: right_table,
                    schema: right_provider.schema(),
                }),
                left_key,
                right_key,
            };
        }

        // Optional WHERE.
        if self.eat_keyword("WHERE") {
            let predicate = self.expr()?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // Optional GROUP BY.
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut cols = vec![self.column_name()?];
            while *self.peek() == Tok::Comma {
                self.pos += 1;
                cols.push(self.column_name()?);
            }
            Some(cols)
        } else {
            None
        };

        // Shape the output from the select list.
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        if has_agg || group_by.is_some() {
            let group_by = group_by.unwrap_or_default();
            let mut aggs = Vec::new();
            let mut out_order: Vec<String> = Vec::new();
            for item in &items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(PlanError::Parse("SELECT * with GROUP BY".into()))
                    }
                    SelectItem::Expr {
                        expr: Expr::Col(c), ..
                    } => {
                        if !group_by.contains(c) {
                            return Err(PlanError::Parse(format!(
                                "column {c} must appear in GROUP BY"
                            )));
                        }
                        out_order.push(c.clone());
                    }
                    SelectItem::Expr { .. } => {
                        return Err(PlanError::Parse(
                            "computed expressions over groups are not supported".into(),
                        ))
                    }
                    SelectItem::Agg { func, input, name } => {
                        aggs.push(AggSpec {
                            func: *func,
                            input: input.clone(),
                            out_name: name.clone(),
                        });
                        out_order.push(name.clone());
                    }
                }
            }
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggs,
            };
            // Re-project to the select-list order.
            let exprs = out_order
                .into_iter()
                .map(|n| (Expr::Col(n.clone()), n))
                .collect();
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
            };
        } else if !matches!(items.as_slice(), [SelectItem::Wildcard]) {
            let exprs = items
                .into_iter()
                .map(|i| match i {
                    SelectItem::Expr { expr, name } => Ok((expr, name)),
                    SelectItem::Wildcard => Err(PlanError::Parse("mixed * and columns".into())),
                    SelectItem::Agg { .. } => unreachable!(),
                })
                .collect::<Result<Vec<_>, _>>()?;
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
            };
        }

        // Optional ORDER BY.
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = Vec::new();
            loop {
                let col = self.column_name()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    let _ = self.eat_keyword("ASC");
                    false
                };
                keys.push((col, desc));
                if *self.peek() != Tok::Comma {
                    break;
                }
                self.pos += 1;
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        // Optional LIMIT.
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Tok::Int(n) if n >= 0 => {
                    plan = LogicalPlan::Limit {
                        input: Box::new(plan),
                        n: n as usize,
                    };
                }
                other => return Err(PlanError::Parse(format!("bad LIMIT {other:?}"))),
            }
        }

        self.expect(Tok::Eof)?;
        Ok(plan)
    }

    fn table_ref(&mut self) -> Result<(String, Option<String>), PlanError> {
        let name = self.ident()?;
        // Optional alias (bare ident not followed by a clause keyword).
        if let Tok::Ident(s) = self.peek() {
            let is_clause = ["JOIN", "ON", "WHERE", "GROUP", "ORDER", "LIMIT"]
                .iter()
                .any(|k| s.eq_ignore_ascii_case(k));
            if !is_clause {
                let alias = self.ident()?;
                return Ok((name, Some(alias)));
            }
        }
        Ok((name, None))
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, PlanError> {
        let mut items = vec![self.select_item()?];
        while *self.peek() == Tok::Comma {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, PlanError> {
        if *self.peek() == Tok::Star {
            self.pos += 1;
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate function?
        if let Tok::Ident(name) = self.peek().clone() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if self.toks.get(self.pos + 1) == Some(&Tok::LParen) {
                    self.pos += 2; // func (
                    let input = if *self.peek() == Tok::Star {
                        self.pos += 1;
                        None
                    } else {
                        Some(self.column_name()?)
                    };
                    self.expect(Tok::RParen)?;
                    let default = format!("{}({})", func.name(), input.as_deref().unwrap_or("*"));
                    let out = if self.eat_keyword("AS") {
                        self.ident()?
                    } else {
                        default
                    };
                    return Ok(SelectItem::Agg {
                        func,
                        input,
                        name: out,
                    });
                }
            }
        }
        let expr = self.expr()?;
        let name = if self.eat_keyword("AS") {
            self.ident()?
        } else {
            match &expr {
                Expr::Col(c) => c.clone(),
                other => format!("{other}"),
            }
        };
        Ok(SelectItem::Expr { expr, name })
    }

    // Expression grammar: or → and → not → comparison → additive →
    // multiplicative → primary.
    fn expr(&mut self) -> Result<Expr, PlanError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, PlanError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, PlanError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, PlanError> {
        if self.eat_keyword("NOT") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, PlanError> {
        let left = self.additive()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::NotEq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::LtEq => Some(BinOp::LtEq),
            Tok::Gt => Some(BinOp::Gt),
            Tok::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated {
                left.is_not_null()
            } else {
                left.is_null()
            });
        }
        // BETWEEN lo AND hi → (left >= lo) AND (left <= hi).
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(left.clone().gt_eq(lo).and(left.lt_eq(hi)));
        }
        // [NOT] IN (v1, v2, ...) → OR chain of equalities.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(Tok::LParen)?;
            let mut alternatives: Option<Expr> = None;
            loop {
                let item = self.additive()?;
                let eq = left.clone().eq(item);
                alternatives = Some(match alternatives {
                    None => eq,
                    Some(acc) => acc.or(eq),
                });
                if *self.peek() == Tok::Comma {
                    self.pos += 1;
                    continue;
                }
                break;
            }
            self.expect(Tok::RParen)?;
            let e = alternatives.ok_or_else(|| PlanError::Parse("empty IN list".into()))?;
            return Ok(if negated { e.not() } else { e });
        }
        if negated {
            return Err(PlanError::Parse("expected IN after NOT".into()));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, PlanError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, PlanError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr, PlanError> {
        match self.next() {
            Tok::Int(n) => Ok(Expr::Lit(Value::Int64(n))),
            Tok::Float(f) => Ok(Expr::Lit(Value::Float64(f))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Utf8(s))),
            Tok::Minus => {
                // Negative literal.
                match self.next() {
                    Tok::Int(n) => Ok(Expr::Lit(Value::Int64(-n))),
                    Tok::Float(f) => Ok(Expr::Lit(Value::Float64(-f))),
                    other => Err(PlanError::Parse(format!("cannot negate {other:?}"))),
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Lit(Value::Null));
                }
                // Qualified column?
                if *self.peek() == Tok::Dot {
                    self.pos += 1;
                    let col = self.ident()?;
                    return Ok(Expr::Col(col));
                }
                Ok(Expr::Col(name))
            }
            other => Err(PlanError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse a SQL query into a logical plan, resolving tables in `ctx`.
pub fn parse_query(query: &str, ctx: &Arc<Context>) -> Result<LogicalPlan, PlanError> {
    let toks = lex(query)?;
    let mut p = Parser { toks, pos: 0, ctx };
    p.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnarTable;
    use rowstore::{DataType, Field, Row, Schema};
    use sparklet::{Cluster, ClusterConfig};

    fn ctx() -> Arc<Context> {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        let flights = Schema::new(vec![
            Field::new("flightNum", DataType::Int64),
            Field::new("tailNum", DataType::Utf8),
            Field::new("delay", DataType::Float64),
        ]);
        let rows: Vec<Row> = (0..60)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Utf8(format!("N{}", i % 10)),
                    Value::Float64((i % 7) as f64),
                ]
            })
            .collect();
        ctx.register_table(
            "flights",
            Arc::new(ColumnarTable::from_rows(flights, rows, 3)),
        );

        let planes = Schema::new(vec![
            Field::new("tailNum", DataType::Utf8),
            Field::new("year", DataType::Int64),
        ]);
        let prows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Utf8(format!("N{i}")), Value::Int64(1990 + i)])
            .collect();
        ctx.register_table(
            "planes",
            Arc::new(ColumnarTable::from_rows(planes, prows, 2)),
        );
        ctx
    }

    #[test]
    fn select_star() {
        let ctx = ctx();
        let rows = ctx.sql("SELECT * FROM flights").unwrap().collect().unwrap();
        assert_eq!(rows.len(), 60);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn select_columns_where() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT tailNum FROM flights WHERE flightNum < 10")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn string_equality() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT * FROM flights WHERE tailNum = 'N3'")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn complex_predicate() {
        let ctx = ctx();
        let df = ctx
            .sql("SELECT * FROM flights WHERE flightNum >= 10 AND flightNum < 20 OR delay = 0.0")
            .unwrap();
        let n = df.count().unwrap();
        let expected = (0..60)
            .filter(|i| (*i >= 10 && *i < 20) || (i % 7 == 0))
            .count();
        assert_eq!(n, expected);
    }

    #[test]
    fn join_on_qualified_keys() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT * FROM flights JOIN planes ON flights.tailNum = planes.tailNum")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 60, "every flight has a plane");
        assert_eq!(rows[0].len(), 5);
    }

    #[test]
    fn join_keys_reversed_in_on_clause() {
        let ctx = ctx();
        let n = ctx
            .sql("SELECT * FROM flights JOIN planes ON planes.tailNum = flights.tailNum")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 60);
    }

    #[test]
    fn group_by_aggregates() {
        let ctx = ctx();
        let mut rows = ctx
            .sql("SELECT tailNum, count(*) AS n, max(delay) AS md FROM flights GROUP BY tailNum")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 10);
        rows.sort_by(|a, b| a[0].as_str().unwrap().cmp(b[0].as_str().unwrap()));
        assert_eq!(rows[0][1], Value::Int64(6));
    }

    #[test]
    fn global_aggregate() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT count(*) AS n, avg(delay) AS ad FROM flights")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int64(60));
    }

    #[test]
    fn limit_clause() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT * FROM flights LIMIT 5")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn arithmetic_in_select() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT flightNum * 2 + 1 AS x FROM flights WHERE flightNum = 3")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int64(7)]]);
    }

    #[test]
    fn parse_errors() {
        let ctx = ctx();
        assert!(ctx.sql("SELEKT * FROM flights").is_err());
        assert!(ctx.sql("SELECT * FROM missing_table").is_err());
        assert!(ctx.sql("SELECT * FROM flights WHERE").is_err());
        assert!(ctx
            .sql("SELECT * FROM flights WHERE tailNum = 'unterminated")
            .is_err());
        assert!(ctx.sql("SELECT nonsense( FROM flights").is_err());
    }

    #[test]
    fn negative_literals_and_parens() {
        let ctx = ctx();
        let n = ctx
            .sql("SELECT * FROM flights WHERE (flightNum - 100) < -50")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn order_by_clause() {
        let ctx = ctx();
        let rows = ctx
            .sql("SELECT flightNum FROM flights WHERE flightNum < 10 ORDER BY flightNum DESC LIMIT 3")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(9)],
                vec![Value::Int64(8)],
                vec![Value::Int64(7)]
            ]
        );
        // Multi-key with mixed directions parses and runs.
        let n = ctx
            .sql("SELECT * FROM flights ORDER BY tailNum ASC, flightNum DESC LIMIT 5")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn between_predicate() {
        let ctx = ctx();
        let n = ctx
            .sql("SELECT * FROM flights WHERE flightNum BETWEEN 10 AND 19")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn in_predicate() {
        let ctx = ctx();
        let n = ctx
            .sql("SELECT * FROM flights WHERE flightNum IN (1, 2, 3)")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 3);
        let n = ctx
            .sql("SELECT * FROM flights WHERE tailNum IN ('N1', 'N2')")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 12);
        let n = ctx
            .sql("SELECT * FROM flights WHERE flightNum NOT IN (0)")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 59);
    }

    #[test]
    fn is_null_predicates() {
        let ctx = ctx();
        assert_eq!(
            ctx.sql("SELECT * FROM flights WHERE tailNum IS NULL")
                .unwrap()
                .count()
                .unwrap(),
            0
        );
        assert_eq!(
            ctx.sql("SELECT * FROM flights WHERE tailNum IS NOT NULL")
                .unwrap()
                .count()
                .unwrap(),
            60
        );
    }
}
