//! Logical query plans.
//!
//! Queries — whether written through the DataFrame API or parsed from SQL —
//! become [`LogicalPlan`] trees: high-level operator descriptions with no
//! execution strategy ("logical plans provide high-level representations of
//! each operator without defining how to perform the computation", §III-B).
//! The planner, together with registered rules (the Catalyst-extension
//! analogue), lowers them to physical `ExecPlan`s.

use crate::expr::{BinOp, Expr, PlanError};
use rowstore::{DataType, Field, Schema};
use std::fmt::Write as _;
use std::sync::Arc;

/// Aggregate functions supported by `GROUP BY` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate output: function, input column (None for `COUNT(*)`), and
/// output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Option<String>,
    pub out_name: String,
}

/// A logical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a catalog table. The schema is resolved at plan-construction
    /// time so downstream operators can bind expressions.
    Scan { table: String, schema: Arc<Schema> },
    /// Keep rows satisfying `predicate`.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Compute output columns (projection).
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Inner equi-join on `left_key = right_key`.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_key: String,
        right_key: String,
    },
    /// Hash aggregation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// Sort by columns; `true` = descending. Nulls sort last.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(String, bool)>,
    },
    /// Take the first `n` rows.
    Limit { input: Box<LogicalPlan>, n: usize },
}

impl LogicalPlan {
    /// Catalog tables this plan scans (deduplicated, in scan order) —
    /// the provider set a session pins for the lifetime of a running
    /// query.
    pub fn referenced_tables(&self) -> Vec<String> {
        fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
            match plan {
                LogicalPlan::Scan { table, .. } => {
                    if !out.contains(table) {
                        out.push(table.clone());
                    }
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => walk(input, out),
                LogicalPlan::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Structural fingerprint of this subtree, used to key runtime-stats
    /// observations for non-scan build sides (join/aggregate outputs).
    /// Derived from the full `Debug` rendering, so two plans collide only
    /// if they are structurally identical — which is exactly when sharing
    /// an observation is correct.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }
}

/// Infer the type an expression produces against `schema`.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<(DataType, bool), PlanError> {
    Ok(match expr {
        Expr::Col(name) => {
            let i = schema
                .index_of(name)
                .ok_or_else(|| PlanError::UnknownColumn(name.clone()))?;
            let f = schema.field(i);
            (f.dtype, f.nullable)
        }
        Expr::Lit(v) => (v.dtype().unwrap_or(DataType::Int64), v.is_null()),
        Expr::Binary { left, op, right } => match op {
            BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq
            | BinOp::And
            | BinOp::Or => (DataType::Bool, true),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let (lt, ln) = infer_type(left, schema)?;
                let (rt, rn) = infer_type(right, schema)?;
                let t = if lt == DataType::Float64 || rt == DataType::Float64 {
                    DataType::Float64
                } else {
                    DataType::Int64
                };
                (t, ln || rn)
            }
        },
        Expr::Not(_) | Expr::IsNull(_) | Expr::IsNotNull(_) => (DataType::Bool, false),
    })
}

impl LogicalPlan {
    /// The output schema of this plan.
    pub fn schema(&self) -> Result<Arc<Schema>, PlanError> {
        Ok(match self {
            LogicalPlan::Scan { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. } => input.schema()?,
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let fields = exprs
                    .iter()
                    .map(|(e, name)| {
                        let (dtype, nullable) = infer_type(e, &in_schema)?;
                        Ok(Field {
                            name: name.clone(),
                            dtype,
                            nullable,
                        })
                    })
                    .collect::<Result<Vec<_>, PlanError>>()?;
                Schema::new(fields)
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let ls = left.schema()?;
                let rs = right.schema()?;
                if ls.index_of(left_key).is_none() {
                    return Err(PlanError::UnknownColumn(left_key.clone()));
                }
                if rs.index_of(right_key).is_none() {
                    return Err(PlanError::UnknownColumn(right_key.clone()));
                }
                ls.join(&rs)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::new();
                for g in group_by {
                    let i = in_schema
                        .index_of(g)
                        .ok_or_else(|| PlanError::UnknownColumn(g.clone()))?;
                    fields.push(in_schema.field(i).clone());
                }
                for a in aggs {
                    let dtype = match (a.func, &a.input) {
                        (AggFunc::Count, _) => DataType::Int64,
                        (AggFunc::Avg, _) => DataType::Float64,
                        (f, Some(c)) => {
                            let i = in_schema
                                .index_of(c)
                                .ok_or_else(|| PlanError::UnknownColumn(c.clone()))?;
                            match (f, in_schema.field(i).dtype) {
                                (AggFunc::Sum, DataType::Float64) => DataType::Float64,
                                (AggFunc::Sum, _) => DataType::Int64,
                                (_, t) => t,
                            }
                        }
                        (f, None) => {
                            return Err(PlanError::Unsupported(format!(
                                "{} requires a column argument",
                                f.name()
                            )))
                        }
                    };
                    fields.push(Field::nullable(a.out_name.clone(), dtype));
                }
                Schema::new(fields)
            }
            LogicalPlan::Sort { input, keys } => {
                let schema = input.schema()?;
                for (k, _) in keys {
                    if schema.index_of(k).is_none() {
                        return Err(PlanError::UnknownColumn(k.clone()));
                    }
                }
                schema
            }
            LogicalPlan::Limit { input, .. } => input.schema()?,
        })
    }

    /// Render the plan tree, one operator per line (for `explain`).
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, schema } => {
                let _ = writeln!(out, "{pad}Scan: {table} [{} cols]", schema.arity());
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter: {predicate}");
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let _ = writeln!(out, "{pad}Project: {}", cols.join(", "));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let _ = writeln!(out, "{pad}Join: {left_key} = {right_key}");
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let aggs: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        format!(
                            "{}({}) AS {}",
                            a.func.name(),
                            a.input.as_deref().unwrap_or("*"),
                            a.out_name
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate: group=[{}] aggs=[{}]",
                    group_by.join(", "),
                    aggs.join(", ")
                );
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(k, desc)| format!("{k} {}", if *desc { "DESC" } else { "ASC" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort: {}", keys.join(", "));
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}Limit: {n}");
                input.fmt_indent(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("score", DataType::Float64),
            ]),
        }
    }

    #[test]
    fn filter_preserves_schema() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: col("id").gt(lit(1i64)),
        };
        assert_eq!(p.schema().unwrap().arity(), 3);
    }

    #[test]
    fn project_infers_types() {
        let p = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![
                (col("name"), "name".into()),
                (col("id").add(lit(1i64)), "id_plus".into()),
                (col("score").mul(lit(2i64)), "dbl".into()),
                (col("id").gt(lit(0i64)), "pos".into()),
            ],
        };
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).dtype, DataType::Utf8);
        assert_eq!(s.field(1).dtype, DataType::Int64);
        assert_eq!(s.field(2).dtype, DataType::Float64);
        assert_eq!(s.field(3).dtype, DataType::Bool);
    }

    #[test]
    fn join_schema_concatenates() {
        let p = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: "id".into(),
            right_key: "id".into(),
        };
        let s = p.schema().unwrap();
        assert_eq!(s.arity(), 6);
        assert_eq!(s.field(3).name, "right.id");
    }

    #[test]
    fn join_unknown_key_fails() {
        let p = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: "nope".into(),
            right_key: "id".into(),
        };
        assert!(p.schema().is_err());
    }

    #[test]
    fn aggregate_schema() {
        let p = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec!["name".into()],
            aggs: vec![
                AggSpec {
                    func: AggFunc::Count,
                    input: None,
                    out_name: "n".into(),
                },
                AggSpec {
                    func: AggFunc::Sum,
                    input: Some("score".into()),
                    out_name: "total".into(),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    input: Some("id".into()),
                    out_name: "avg_id".into(),
                },
                AggSpec {
                    func: AggFunc::Max,
                    input: Some("id".into()),
                    out_name: "max_id".into(),
                },
            ],
        };
        let s = p.schema().unwrap();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.field(1).dtype, DataType::Int64); // count
        assert_eq!(s.field(2).dtype, DataType::Float64); // sum of float
        assert_eq!(s.field(3).dtype, DataType::Float64); // avg
        assert_eq!(s.field(4).dtype, DataType::Int64); // max of int
    }

    #[test]
    fn explain_renders_tree() {
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: col("id").eq(lit(3i64)),
            }),
            n: 10,
        };
        let text = p.display_indent();
        assert!(text.contains("Limit: 10"));
        assert!(text.contains("Filter: (id = 3)"));
        assert!(text.contains("Scan: t"));
    }
}
