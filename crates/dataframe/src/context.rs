//! The session context: catalog, execution config, and the rule registry
//! that lets extension libraries (the Indexed DataFrame) inject their own
//! physical planning — the analogue of registering Catalyst optimization
//! rules and strategies from an external jar (§III-B, Fig. 2).

use crate::column::ColumnarTable;
use crate::expr::PlanError;
use crate::physical::ExecPlan;
use crate::plan::LogicalPlan;
use crate::planner::Planner;
use parking_lot::{Mutex, RwLock};
use rowstore::{Row, Schema};
use sparklet::Cluster;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Execution tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of shuffle partitions for distributed joins/aggregations.
    pub shuffle_partitions: usize,
    /// Relations estimated below this size are broadcast instead of
    /// shuffled (Spark's `autoBroadcastJoinThreshold`; the paper quotes
    /// 10 MB, §IV-C).
    pub broadcast_threshold_bytes: usize,
    /// Prefer sort-merge join over shuffled-hash join for large joins
    /// (Spark's default; the paper's production runs use broadcast-hash,
    /// "faster than the notoriously slow SortMerge Join", §IV-E).
    pub prefer_sort_merge: bool,
    /// Enable runtime-adaptive execution: shuffled/sort-merge joins
    /// re-decide their strategy after materializing their inputs (demote
    /// to broadcast-hash when the build side turns out tiny, salt hot keys
    /// past the cluster's `skew_ratio`), exchanges split/coalesce skewed
    /// reduce partitions, and observed cardinalities feed the
    /// [`Context::runtime_stats`] catalog for later queries.
    pub adaptive: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shuffle_partitions: 0, // 0 → derive from cluster geometry
            broadcast_threshold_bytes: 10 << 20,
            prefer_sort_merge: false,
            adaptive: true,
        }
    }
}

/// Observed (not estimated) size of a table, recorded by executed scans
/// and consulted by the planner on subsequent queries — sessions
/// re-running similar queries get broadcast decisions based on what the
/// table actually weighed, not on the provider's registration-time
/// estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    pub rows: u64,
    pub bytes: u64,
    /// How many executions contributed (last observation wins; the count
    /// is for diagnostics).
    pub observations: u64,
}

/// What a runtime observation is keyed by. Bare scans record against the
/// catalog name; join/aggregate outputs used as build sides record against
/// a structural fingerprint of their logical subtree, tagged with the
/// tables the subtree reads so re-registering any of them invalidates the
/// observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsTarget {
    /// A bare catalog scan (possibly behind pass-through operators).
    Table(String),
    /// A non-scan subtree (join/aggregate output) identified by the
    /// fingerprint of its logical plan.
    Plan {
        fingerprint: u64,
        /// Catalog tables the subtree scans; re-registering any of them
        /// drops the observation.
        tables: Vec<String>,
    },
}

/// The cardinality-feedback catalog: per-table observed row counts and
/// byte sizes, keyed by catalog name — plus fingerprint-keyed observations
/// for join/aggregate subtrees used as build sides.
#[derive(Default)]
pub struct RuntimeStats {
    tables: Mutex<HashMap<String, TableStats>>,
    plans: Mutex<HashMap<u64, (Vec<String>, TableStats)>>,
}

impl RuntimeStats {
    /// Record one observed materialization of `table`. The latest
    /// observation replaces the previous one (tables mutate between
    /// queries; stale sizes are worse than fresh ones).
    pub fn record_table(&self, table: &str, rows: u64, bytes: u64) {
        let mut tables = self.tables.lock();
        let e = tables.entry(table.to_string()).or_insert(TableStats {
            rows: 0,
            bytes: 0,
            observations: 0,
        });
        e.rows = rows;
        e.bytes = bytes;
        e.observations += 1;
    }

    pub fn observed(&self, table: &str) -> Option<TableStats> {
        self.tables.lock().get(table).copied()
    }

    /// Record an observation against either key kind.
    pub fn record(&self, target: &StatsTarget, rows: u64, bytes: u64) {
        match target {
            StatsTarget::Table(name) => self.record_table(name, rows, bytes),
            StatsTarget::Plan {
                fingerprint,
                tables,
            } => {
                let mut plans = self.plans.lock();
                let e = plans
                    .entry(*fingerprint)
                    .or_insert_with(|| (tables.clone(), TableStats::default()));
                e.0 = tables.clone();
                e.1.rows = rows;
                e.1.bytes = bytes;
                e.1.observations += 1;
            }
        }
    }

    /// Observation for a fingerprinted (join/aggregate) subtree.
    pub fn observed_plan(&self, fingerprint: u64) -> Option<TableStats> {
        self.plans.lock().get(&fingerprint).map(|(_, s)| *s)
    }

    /// Drop the observation for `table` (e.g. after re-registration), plus
    /// every fingerprinted observation whose subtree reads that table.
    pub fn forget(&self, table: &str) {
        self.tables.lock().remove(table);
        self.plans
            .lock()
            .retain(|_, (tables, _)| !tables.iter().any(|t| t == table));
    }
}

/// A table registered in the catalog. Implemented by the built-in columnar
/// cache and by the Indexed DataFrame's Indexed Batch RDD.
pub trait TableProvider: Send + Sync + 'static {
    fn schema(&self) -> Arc<Schema>;
    fn num_partitions(&self) -> usize;
    /// Materialize one partition as rows — the universal fallback path
    /// ("an Indexed Batch RDD can always fall back to a regular Spark Row
    /// RDD", Fig. 2).
    fn scan_partition(&self, partition: usize) -> Vec<Row>;
    /// Total rows (exact).
    fn num_rows(&self) -> usize;
    /// Estimated in-memory size, used for broadcast decisions.
    fn estimated_bytes(&self) -> usize;
    fn as_any(&self) -> &dyn Any;

    /// Scan one partition with a pushed-down predicate and/or projection.
    /// The default materializes and then filters/projects; providers that
    /// can evaluate on their native representation (the Indexed Batch
    /// RDD's binary rows) override this to skip materializing rejected
    /// rows and unused columns.
    /// Expose partitions as shared columnar storage for the vectorized
    /// pipeline. Providers whose native layout is typed column vectors
    /// (the columnar cache, the indexed columnar table) return `Some`;
    /// row-layout providers keep the default `None` and stay on the
    /// row-at-a-time scan.
    fn columnar_source(&self) -> Option<Arc<dyn crate::column::ColumnarSource>> {
        None
    }

    fn scan_partition_pushdown(
        &self,
        partition: usize,
        predicate: Option<&crate::expr::BoundExpr>,
        projection: Option<&[usize]>,
    ) -> Vec<Row> {
        let rows = self.scan_partition(partition);
        rows.into_iter()
            .filter(|r| {
                predicate
                    .map(|p| crate::expr::BoundExpr::is_true(&p.eval_row(r)))
                    .unwrap_or(true)
            })
            .map(|r| match projection {
                Some(cols) => cols.iter().map(|&c| r[c].clone()).collect(),
                None => r,
            })
            .collect()
    }
}

impl TableProvider for ColumnarTable {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions()
    }

    fn scan_partition(&self, partition: usize) -> Vec<Row> {
        let p = &self.partitions[partition];
        (0..p.num_rows()).map(|i| p.row(i)).collect()
    }

    fn num_rows(&self) -> usize {
        self.num_rows()
    }

    fn estimated_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn columnar_source(&self) -> Option<Arc<dyn crate::column::ColumnarSource>> {
        Some(Arc::new(self.clone()))
    }
}

/// An extension hook consulted before default physical planning. The first
/// rule returning `Some` wins. This is how the Indexed DataFrame library
/// triggers indexed lookups/joins without modifying engine code.
pub trait PlannerRule: Send + Sync {
    /// A short name for `explain` output.
    fn name(&self) -> &str;
    /// Try to plan `plan` (including its children) yourself.
    fn plan(
        &self,
        plan: &LogicalPlan,
        ctx: &Arc<Context>,
        planner: &Planner,
    ) -> Option<Result<Arc<dyn ExecPlan>, PlanError>>;
}

/// The session: cluster handle, catalog, config, and extension rules.
pub struct Context {
    cluster: Arc<Cluster>,
    config: ExecConfig,
    catalog: Mutex<HashMap<String, Arc<dyn TableProvider>>>,
    runtime_stats: RuntimeStats,
    rules: RwLock<Vec<Arc<dyn PlannerRule>>>,
    /// Tables pinned by running queries (name → pin count). Physical
    /// plans snapshot their providers at plan time, so execution never
    /// touches the catalog — the pin exists so DDL gets a typed error
    /// instead of silently yanking a table out from under a session.
    pins: Mutex<HashMap<String, usize>>,
    /// Session-scoped extension state, keyed by a static string the
    /// extension owns. This is how out-of-crate subsystems (the Indexed
    /// DataFrame's standing-view manager) hang per-session singletons off
    /// the context without the engine crate knowing their types.
    extensions: Mutex<HashMap<&'static str, Arc<dyn Any + Send + Sync>>>,
}

/// RAII pin over the tables a running query scans: created at submit,
/// released when the query finishes (success, failure or cancellation).
pub(crate) struct TablePinGuard {
    ctx: Arc<Context>,
    tables: Vec<String>,
}

impl Drop for TablePinGuard {
    fn drop(&mut self) {
        let mut pins = self.ctx.pins.lock();
        for t in &self.tables {
            if let Some(c) = pins.get_mut(t) {
                *c -= 1;
                if *c == 0 {
                    pins.remove(t);
                }
            }
        }
    }
}

impl Context {
    pub fn new(cluster: Arc<Cluster>) -> Arc<Context> {
        Self::with_config(cluster, ExecConfig::default())
    }

    pub fn with_config(cluster: Arc<Cluster>, config: ExecConfig) -> Arc<Context> {
        Arc::new(Context {
            cluster,
            config,
            catalog: Mutex::new(HashMap::new()),
            runtime_stats: RuntimeStats::default(),
            rules: RwLock::new(Vec::new()),
            pins: Mutex::new(HashMap::new()),
            extensions: Mutex::new(HashMap::new()),
        })
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Effective shuffle partition count.
    pub fn shuffle_partitions(&self) -> usize {
        if self.config.shuffle_partitions > 0 {
            self.config.shuffle_partitions
        } else {
            self.cluster.config().default_partitions()
        }
    }

    /// The cardinality-feedback catalog (observed table sizes).
    pub fn runtime_stats(&self) -> &RuntimeStats {
        &self.runtime_stats
    }

    /// Register (or replace) a named table. Replacing a table invalidates
    /// its runtime-stats observation — the new contents may have nothing
    /// in common with the measured ones.
    pub fn register_table(&self, name: impl Into<String>, provider: Arc<dyn TableProvider>) {
        let name = name.into();
        self.runtime_stats.forget(&name);
        self.catalog.lock().insert(name, provider);
    }

    /// Remove a table from the catalog. Fails with
    /// [`PlanError::TablePinned`] while a running query pins the table
    /// (submitted via [`Context::submit_sql`] and not yet finished) —
    /// retry after the query completes.
    pub fn deregister_table(
        &self,
        name: &str,
    ) -> Result<Option<Arc<dyn TableProvider>>, PlanError> {
        let pins = self.pins.lock();
        if pins.get(name).copied().unwrap_or(0) > 0 {
            return Err(PlanError::TablePinned(name.to_string()));
        }
        Ok(self.catalog.lock().remove(name))
    }

    /// Pin `tables` for the lifetime of the returned guard.
    pub(crate) fn pin_tables(self: &Arc<Self>, tables: Vec<String>) -> TablePinGuard {
        let mut pins = self.pins.lock();
        for t in &tables {
            *pins.entry(t.clone()).or_insert(0) += 1;
        }
        drop(pins);
        TablePinGuard {
            ctx: Arc::clone(self),
            tables,
        }
    }

    /// How many running queries pin `name` (diagnostics/tests).
    pub fn table_pin_count(&self, name: &str) -> usize {
        self.pins.lock().get(name).copied().unwrap_or(0)
    }

    /// Resolve a table by name.
    pub fn provider(&self, name: &str) -> Result<Arc<dyn TableProvider>, PlanError> {
        self.catalog
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PlanError::UnknownTable(name.to_string()))
    }

    /// Names of registered tables (sorted, for diagnostics).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Get-or-create session-scoped extension state under `key`. The
    /// closure runs at most once per session per key; later callers get
    /// the cached value. Returns `None` only if the stored value's type
    /// doesn't match `T` (two extensions colliding on a key).
    pub fn extension_state<T: Any + Send + Sync>(
        &self,
        key: &'static str,
        init: impl FnOnce() -> Arc<T>,
    ) -> Option<Arc<T>> {
        let mut ext = self.extensions.lock();
        let v = ext
            .entry(key)
            .or_insert_with(|| init() as Arc<dyn Any + Send + Sync>);
        Arc::clone(v).downcast::<T>().ok()
    }

    /// Install an extension planning rule (consulted in registration order).
    pub fn register_rule(&self, rule: Arc<dyn PlannerRule>) {
        self.rules.write().push(rule);
    }

    pub fn rules(&self) -> Vec<Arc<dyn PlannerRule>> {
        self.rules.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowstore::{DataType, Field, Value};
    use sparklet::ClusterConfig;

    fn table() -> ColumnarTable {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int64(i)]).collect();
        ColumnarTable::from_rows(schema, rows, 2)
    }

    #[test]
    fn catalog_roundtrip() {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        ctx.register_table("t", Arc::new(table()));
        let p = ctx.provider("t").unwrap();
        assert_eq!(p.num_rows(), 10);
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(ctx.table_names(), vec!["t".to_string()]);
        assert!(ctx.provider("missing").is_err());
        assert!(ctx.deregister_table("t").unwrap().is_some());
        assert!(ctx.provider("t").is_err());
    }

    #[test]
    fn provider_scan_matches_rows() {
        let t = table();
        let all: Vec<Row> = (0..2)
            .flat_map(|p| TableProvider::scan_partition(&t, p))
            .collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn shuffle_partitions_defaults_from_cluster() {
        let cluster = Cluster::new(ClusterConfig::test_small()); // 2 workers × 2 cores
        let ctx = Context::new(Arc::clone(&cluster));
        assert_eq!(
            ctx.shuffle_partitions(),
            cluster.config().default_partitions()
        );
        let ctx2 = Context::with_config(
            cluster,
            ExecConfig {
                shuffle_partitions: 7,
                ..ExecConfig::default()
            },
        );
        assert_eq!(ctx2.shuffle_partitions(), 7);
    }
}
