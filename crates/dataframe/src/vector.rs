//! Vectorized expression kernels: batch-at-a-time evaluation over typed
//! column slices and a selection vector.
//!
//! The row-at-a-time interpreter (`BoundExpr::eval_row`) walks the
//! expression tree once per row, boxing every intermediate into a
//! [`Value`]. The kernels here walk the tree once per *batch*: each
//! operator node runs a tight typed loop over the rows picked out by a
//! [`SelVec`], reading column storage directly and writing dense output
//! vectors. Null handling, three-valued logic, numeric promotion and
//! division-by-zero follow `eval_binary`/`eval_not` exactly — the proptest
//! equivalence suite (`tests/vectorized_equivalence.rs`) pins this.
//!
//! Dispatch is static: [`batch_kind`] types the tree bottom-up from column
//! dtypes and literal values, choosing one kernel lane (i64 / f64 / str /
//! bool / all-null) per node. Expressions the kernels do not cover —
//! today only `NOT` over a statically non-boolean operand, whose row-path
//! behaviour is a panic we must preserve — report `None`, and plan nodes
//! keep the row-at-a-time fallback.

use crate::column::{ColumnVec, ColumnarPartition};
use crate::expr::{BinOp, BoundExpr};
use rowstore::{DataType, Schema, Value};
use std::cmp::Ordering;

/// A reusable selection vector: the row indices of one columnar partition
/// that are still "alive" through a fused scan→filter→project pipeline.
/// Filters narrow it in place; projections gather through it.
#[derive(Debug, Clone, Default)]
pub struct SelVec {
    indices: Vec<u32>,
}

impl SelVec {
    /// Select every row of an `n`-row partition.
    pub fn identity(n: usize) -> SelVec {
        SelVec {
            indices: (0..n as u32).collect(),
        }
    }

    /// Select the half-open row range `start..end` (chunked scans).
    pub fn range(start: usize, end: usize) -> SelVec {
        SelVec {
            indices: (start as u32..end as u32).collect(),
        }
    }

    /// Wrap explicit row indices.
    pub fn from_indices(indices: Vec<u32>) -> SelVec {
        SelVec { indices }
    }

    pub fn len(&self) -> usize {
        self.indices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Keep only the first `n` selected rows (LIMIT pushdown).
    pub fn truncate(&mut self, n: usize) {
        self.indices.truncate(n);
    }

    /// Narrow to the positions where `mask` (one slot per selected row) is
    /// SQL-TRUE. Compacts in place; no allocation.
    pub fn retain_true(&mut self, mask: &ColumnVec) {
        let ColumnVec::Bool { values, nulls } = mask else {
            panic!(
                "selection mask must be a Bool column, got {:?}",
                mask.dtype()
            )
        };
        assert_eq!(values.len(), self.indices.len(), "mask/selection length");
        let mut keep = 0;
        for j in 0..self.indices.len() {
            if values[j] && !nulls[j] {
                self.indices[keep] = self.indices[j];
                keep += 1;
            }
        }
        self.indices.truncate(keep);
    }
}

/// The static type lane of an expression node. `Int` covers both integer
/// widths (the row path compares and adds them as i64); `Null` marks a
/// node that is null for every row (e.g. arithmetic over a string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Int,
    Float,
    Bool,
    Str,
    Null,
}

impl Kind {
    fn of_dtype(dtype: DataType) -> Kind {
        match dtype {
            DataType::Int32 | DataType::Int64 => Kind::Int,
            DataType::Float64 => Kind::Float,
            DataType::Bool => Kind::Bool,
            DataType::Utf8 => Kind::Str,
        }
    }

    fn of_value(v: &Value) -> Kind {
        match v {
            Value::Null => Kind::Null,
            Value::Int32(_) | Value::Int64(_) => Kind::Int,
            Value::Float64(_) => Kind::Float,
            Value::Bool(_) => Kind::Bool,
            Value::Utf8(_) => Kind::Str,
        }
    }

    fn is_numeric(self) -> bool {
        matches!(self, Kind::Int | Kind::Float)
    }
}

/// Result lane of `l <op> r` for arithmetic ops, mirroring `arith`:
/// float if either side is float, integer if both are, all-null otherwise
/// (the row path's `as_i64`/`as_f64` coercion failure).
fn arith_kind(lk: Kind, rk: Kind) -> Kind {
    if lk == Kind::Int && rk == Kind::Int {
        Kind::Int
    } else if lk.is_numeric() && rk.is_numeric() {
        Kind::Float
    } else {
        Kind::Null
    }
}

/// Statically type `expr` against `schema`, returning `None` when the
/// batch kernels do not cover it. The only uncovered shape is `NOT` over
/// an operand that is neither boolean nor statically null: `eval_not`
/// panics there, and the fallback row path must keep doing so.
pub fn batch_kind(expr: &BoundExpr, schema: &Schema) -> Option<Kind> {
    Some(match expr {
        BoundExpr::Col(i) => Kind::of_dtype(schema.field(*i).dtype),
        BoundExpr::Lit(v) => Kind::of_value(v),
        BoundExpr::Binary { left, op, right } => {
            let lk = batch_kind(left, schema)?;
            let rk = batch_kind(right, schema)?;
            match op {
                BinOp::And
                | BinOp::Or
                | BinOp::Eq
                | BinOp::NotEq
                | BinOp::Lt
                | BinOp::LtEq
                | BinOp::Gt
                | BinOp::GtEq => Kind::Bool,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith_kind(lk, rk),
            }
        }
        BoundExpr::Not(e) => match batch_kind(e, schema)? {
            Kind::Bool => Kind::Bool,
            Kind::Null => Kind::Null,
            _ => return None,
        },
        BoundExpr::IsNull(e) | BoundExpr::IsNotNull(e) => {
            batch_kind(e, schema)?;
            Kind::Bool
        }
    })
}

/// An intermediate batch value: either a borrowed source column (indexed
/// through the selection vector), an owned dense kernel output (one slot
/// per selected row), or a constant.
enum Batch<'a> {
    Col(&'a ColumnVec),
    Owned(ColumnVec),
    Const(&'a Value),
}

impl Batch<'_> {
    /// Storage index for selected position `j`.
    #[inline]
    fn at(&self, sel: &SelVec, j: usize) -> usize {
        match self {
            Batch::Col(_) => sel.indices[j] as usize,
            _ => j,
        }
    }

    #[inline]
    fn is_null(&self, sel: &SelVec, j: usize) -> bool {
        match self {
            Batch::Col(c) => c.null_at(sel.indices[j] as usize),
            Batch::Owned(c) => c.null_at(j),
            Batch::Const(v) => v.is_null(),
        }
    }

    /// Integer slot (caller guarantees `Kind::Int` and non-null).
    #[inline]
    fn i64_at(&self, sel: &SelVec, j: usize) -> i64 {
        match self {
            Batch::Const(v) => v.as_i64().expect("int lane"),
            b => {
                let i = b.at(sel, j);
                match b.col() {
                    ColumnVec::Int32 { values, .. } => values[i] as i64,
                    ColumnVec::Int64 { values, .. } => values[i],
                    other => panic!("int lane over {:?}", other.dtype()),
                }
            }
        }
    }

    /// Numeric slot widened to f64 (caller guarantees numeric, non-null).
    #[inline]
    fn f64_at(&self, sel: &SelVec, j: usize) -> f64 {
        match self {
            Batch::Const(v) => v.as_f64().expect("float lane"),
            b => {
                let i = b.at(sel, j);
                match b.col() {
                    ColumnVec::Int32 { values, .. } => values[i] as f64,
                    ColumnVec::Int64 { values, .. } => values[i] as f64,
                    ColumnVec::Float64 { values, .. } => values[i],
                    other => panic!("float lane over {:?}", other.dtype()),
                }
            }
        }
    }

    #[inline]
    fn bool_at(&self, sel: &SelVec, j: usize) -> bool {
        match self {
            Batch::Const(v) => v.as_bool().expect("bool lane"),
            b => {
                let i = b.at(sel, j);
                match b.col() {
                    ColumnVec::Bool { values, .. } => values[i],
                    other => panic!("bool lane over {:?}", other.dtype()),
                }
            }
        }
    }

    #[inline]
    fn str_at(&self, sel: &SelVec, j: usize) -> &str {
        match self {
            Batch::Const(v) => v.as_str().expect("string lane"),
            b => {
                let i = b.at(sel, j);
                match b.col() {
                    ColumnVec::Utf8 { values, .. } => values[i].as_str(),
                    other => panic!("string lane over {:?}", other.dtype()),
                }
            }
        }
    }

    #[inline]
    fn col(&self) -> &ColumnVec {
        match self {
            Batch::Col(c) => c,
            Batch::Owned(c) => c,
            Batch::Const(_) => panic!("constant batch has no column"),
        }
    }
}

/// An all-null column of `dtype` with `n` slots.
fn all_null(dtype: DataType, n: usize) -> ColumnVec {
    match dtype {
        DataType::Int32 => ColumnVec::Int32 {
            values: vec![0; n],
            nulls: vec![true; n],
        },
        DataType::Int64 => ColumnVec::Int64 {
            values: vec![0; n],
            nulls: vec![true; n],
        },
        DataType::Float64 => ColumnVec::Float64 {
            values: vec![0.0; n],
            nulls: vec![true; n],
        },
        DataType::Bool => ColumnVec::Bool {
            values: vec![false; n],
            nulls: vec![true; n],
        },
        DataType::Utf8 => ColumnVec::Utf8 {
            values: vec![String::new(); n],
            nulls: vec![true; n],
        },
    }
}

#[inline]
fn cmp_keep(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("cmp_keep on non-comparison"),
    }
}

/// Comparison kernel: one typed loop per lane; incomparable or null-typed
/// operand pairs yield all-null (the row path's `sql_cmp → None`).
fn eval_cmp(l: &Batch, lk: Kind, op: BinOp, r: &Batch, rk: Kind, sel: &SelVec) -> ColumnVec {
    let n = sel.len();
    let mut values = vec![false; n];
    let mut nulls = vec![true; n];
    match (lk, rk) {
        (Kind::Int, Kind::Int) => {
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                values[j] = cmp_keep(op, l.i64_at(sel, j).cmp(&r.i64_at(sel, j)));
                nulls[j] = false;
            }
        }
        (lk, rk) if lk.is_numeric() && rk.is_numeric() => {
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                // partial_cmp: NaN comparisons stay NULL, like sql_cmp.
                if let Some(ord) = l.f64_at(sel, j).partial_cmp(&r.f64_at(sel, j)) {
                    values[j] = cmp_keep(op, ord);
                    nulls[j] = false;
                }
            }
        }
        (Kind::Str, Kind::Str) => {
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                values[j] = cmp_keep(op, l.str_at(sel, j).cmp(r.str_at(sel, j)));
                nulls[j] = false;
            }
        }
        (Kind::Bool, Kind::Bool) => {
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                values[j] = cmp_keep(op, l.bool_at(sel, j).cmp(&r.bool_at(sel, j)));
                nulls[j] = false;
            }
        }
        _ => {}
    }
    ColumnVec::Bool { values, nulls }
}

/// Three-valued AND/OR kernel. A non-boolean operand lane behaves as
/// "unknown" for every row, matching `as_bool → None` on the row path.
fn eval_and_or(l: &Batch, lk: Kind, op: BinOp, r: &Batch, rk: Kind, sel: &SelVec) -> ColumnVec {
    let n = sel.len();
    let mut values = vec![false; n];
    let mut nulls = vec![false; n];
    for j in 0..n {
        let a = (lk == Kind::Bool && !l.is_null(sel, j)).then(|| l.bool_at(sel, j));
        let b = (rk == Kind::Bool && !r.is_null(sel, j)).then(|| r.bool_at(sel, j));
        let v = if op == BinOp::And {
            match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        } else {
            match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        };
        match v {
            Some(x) => values[j] = x,
            None => nulls[j] = true,
        }
    }
    ColumnVec::Bool { values, nulls }
}

/// Arithmetic kernel. Integer lane wraps like the row path and nulls
/// division by zero; float lane divides through (inf/NaN), also like the
/// row path.
fn eval_arith(
    l: &Batch,
    lk: Kind,
    op: BinOp,
    r: &Batch,
    rk: Kind,
    sel: &SelVec,
) -> (ColumnVec, Kind) {
    let n = sel.len();
    match arith_kind(lk, rk) {
        Kind::Int => {
            let mut values = vec![0i64; n];
            let mut nulls = vec![true; n];
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                let (a, b) = (l.i64_at(sel, j), r.i64_at(sel, j));
                if op == BinOp::Div && b == 0 {
                    continue;
                }
                values[j] = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a / b,
                    _ => unreachable!(),
                };
                nulls[j] = false;
            }
            (ColumnVec::Int64 { values, nulls }, Kind::Int)
        }
        Kind::Float => {
            let mut values = vec![0.0f64; n];
            let mut nulls = vec![true; n];
            for j in 0..n {
                if l.is_null(sel, j) || r.is_null(sel, j) {
                    continue;
                }
                let (a, b) = (l.f64_at(sel, j), r.f64_at(sel, j));
                values[j] = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    _ => unreachable!(),
                };
                nulls[j] = false;
            }
            (ColumnVec::Float64 { values, nulls }, Kind::Float)
        }
        _ => {
            // Coercion failure on the row path: null for every row. The
            // storage dtype is unobservable (every slot is null).
            let dtype = if lk == Kind::Float || rk == Kind::Float {
                DataType::Float64
            } else {
                DataType::Int64
            };
            (all_null(dtype, n), Kind::Null)
        }
    }
}

fn eval_rec<'a>(
    expr: &'a BoundExpr,
    part: &'a ColumnarPartition,
    sel: &SelVec,
) -> (Batch<'a>, Kind) {
    match expr {
        BoundExpr::Col(i) => {
            let c = part.column(*i);
            (Batch::Col(c), Kind::of_dtype(c.dtype()))
        }
        BoundExpr::Lit(v) => (Batch::Const(v), Kind::of_value(v)),
        BoundExpr::Binary { left, op, right } => {
            let (lb, lk) = eval_rec(left, part, sel);
            let (rb, rk) = eval_rec(right, part, sel);
            match op {
                BinOp::And | BinOp::Or => (
                    Batch::Owned(eval_and_or(&lb, lk, *op, &rb, rk, sel)),
                    Kind::Bool,
                ),
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => (
                    Batch::Owned(eval_cmp(&lb, lk, *op, &rb, rk, sel)),
                    Kind::Bool,
                ),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let (col, kind) = eval_arith(&lb, lk, *op, &rb, rk, sel);
                    (Batch::Owned(col), kind)
                }
            }
        }
        BoundExpr::Not(e) => {
            let (b, k) = eval_rec(e, part, sel);
            let n = sel.len();
            match k {
                Kind::Bool => {
                    let mut values = vec![false; n];
                    let mut nulls = vec![false; n];
                    for j in 0..n {
                        if b.is_null(sel, j) {
                            nulls[j] = true;
                        } else {
                            values[j] = !b.bool_at(sel, j);
                        }
                    }
                    (Batch::Owned(ColumnVec::Bool { values, nulls }), Kind::Bool)
                }
                Kind::Null => (Batch::Owned(all_null(DataType::Bool, n)), Kind::Null),
                other => panic!("NOT applied to non-boolean {other:?} batch"),
            }
        }
        BoundExpr::IsNull(e) | BoundExpr::IsNotNull(e) => {
            let negate = matches!(expr, BoundExpr::IsNotNull(_));
            let (b, _) = eval_rec(e, part, sel);
            let n = sel.len();
            let mut values = vec![false; n];
            for (j, v) in values.iter_mut().enumerate() {
                *v = b.is_null(sel, j) != negate;
            }
            (
                Batch::Owned(ColumnVec::Bool {
                    values,
                    nulls: vec![false; n],
                }),
                Kind::Bool,
            )
        }
    }
}

/// Evaluate `expr` over the rows of `part` selected by `sel`, returning a
/// dense column with one slot per selected row. Callers must have checked
/// [`batch_kind`] is `Some` (the planner does; fused pipelines never reach
/// here otherwise).
pub fn eval_batch(expr: &BoundExpr, part: &ColumnarPartition, sel: &SelVec) -> ColumnVec {
    let (b, k) = eval_rec(expr, part, sel);
    match b {
        Batch::Owned(c) => c,
        Batch::Col(c) => c.gather(sel.indices()),
        Batch::Const(v) => match v {
            Value::Null => all_null(
                match k {
                    Kind::Float => DataType::Float64,
                    _ => DataType::Int64,
                },
                sel.len(),
            ),
            v => {
                let mut c = ColumnVec::empty(v.dtype().expect("non-null literal"));
                for _ in 0..sel.len() {
                    c.push(v);
                }
                c
            }
        },
    }
}

/// Evaluate `pred` over the selected rows and narrow `sel` to the rows
/// where it is SQL-TRUE — the fused filter step.
pub fn filter_into_sel(pred: &BoundExpr, part: &ColumnarPartition, sel: &mut SelVec) {
    let mask = eval_batch(pred, part, sel);
    sel.retain_true(&mask);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, Expr};
    use rowstore::Field;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int32),
            Field::nullable("c", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::nullable("f", DataType::Bool),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        (0..32)
            .map(|i| {
                vec![
                    Value::Int64(i - 8),
                    Value::Int32((i % 7) as i32),
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 2.0)
                    },
                    Value::Utf8(format!("s{}", i % 5)),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::Bool(i % 2 == 0)
                    },
                ]
            })
            .collect()
    }

    fn check(e: Expr) {
        let s = schema();
        let rows = rows();
        let part = ColumnarPartition::from_rows(&s, &rows);
        let b = BoundExpr::bind(&e, &s).unwrap();
        assert!(b.batch_compatible(&s), "{e} should be kernel-covered");
        // Full selection.
        let sel = SelVec::identity(rows.len());
        let out = b.eval_batch(&part, &sel);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(out.value(i), b.eval_row(r), "expr {e} row {i}");
        }
        // Sparse selection: every third row, reversed storage order is not
        // required — SelVec is ascending here but non-contiguous.
        let sparse = SelVec::from_indices((0..rows.len() as u32).step_by(3).collect());
        let out = b.eval_batch(&part, &sparse);
        for (j, &i) in sparse.indices().iter().enumerate() {
            assert_eq!(
                out.value(j),
                b.eval_row(&rows[i as usize]),
                "expr {e} sel {i}"
            );
        }
    }

    #[test]
    fn comparison_kernels_match_row_eval() {
        check(col("a").gt(lit(3i64)));
        check(col("a").lt_eq(col("b")));
        check(col("b").eq(lit(2i32)));
        check(col("c").gt_eq(lit(4.0)));
        check(col("a").not_eq(col("c"))); // int vs float lane
        check(col("s").eq(lit("s2")));
        check(col("s").lt(lit("s3")));
        check(col("f").eq(lit(true)));
        check(col("a").eq(col("s"))); // incomparable → all null
    }

    #[test]
    fn logic_kernels_match_row_eval() {
        check(col("f").and(col("a").gt(lit(0i64))));
        check(col("f").or(col("c").is_null()));
        check(col("f").not());
        check(col("c").is_null().not());
        check(col("a").and(col("f"))); // non-bool operand → unknown
        check(lit(Value::Null).not());
    }

    #[test]
    fn arith_kernels_match_row_eval() {
        check(col("a").add(col("b")));
        check(col("a").mul(lit(3i64)).sub(col("b")));
        check(col("a").div(col("b"))); // hits divide-by-zero → null
        check(col("c").div(lit(0.0))); // float div-by-zero → inf, not null
        check(col("a").add(col("c"))); // promotes to float
        check(col("s").add(lit(1i64))); // coercion failure → all null
        check(col("a").add(col("s")).eq(lit(3i64)));
    }

    #[test]
    fn null_check_kernels_match_row_eval() {
        check(col("c").is_null());
        check(col("c").is_not_null());
        check(col("a").add(col("s")).is_null());
    }

    #[test]
    fn nan_comparisons_stay_null() {
        let s = Schema::new(vec![Field::nullable("x", DataType::Float64)]);
        let rows = vec![
            vec![Value::Float64(f64::NAN)],
            vec![Value::Float64(1.0)],
            vec![Value::Null],
        ];
        let part = ColumnarPartition::from_rows(&s, &rows);
        let b = BoundExpr::bind(&col("x").lt(lit(2.0)), &s).unwrap();
        let out = b.eval_batch(&part, &SelVec::identity(3));
        assert_eq!(out.value(0), Value::Null, "NaN compare is null");
        assert_eq!(out.value(1), Value::Bool(true));
        assert_eq!(out.value(2), Value::Null);
    }

    #[test]
    fn not_over_non_bool_is_not_covered() {
        let s = schema();
        let b = BoundExpr::bind(&col("a").not(), &s).unwrap();
        assert!(!b.batch_compatible(&s), "NOT int must keep the row path");
        let b = BoundExpr::bind(&col("a").add(col("s")).not(), &s).unwrap();
        assert!(
            b.batch_compatible(&s),
            "NOT over a statically-null operand never panics"
        );
    }

    #[test]
    fn filter_into_sel_keeps_sql_true_rows() {
        let s = schema();
        let rows = rows();
        let part = ColumnarPartition::from_rows(&s, &rows);
        let pred = BoundExpr::bind(&col("f").and(col("a").gt(lit(-2i64))), &s).unwrap();
        let mut sel = SelVec::identity(rows.len());
        filter_into_sel(&pred, &part, &mut sel);
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| BoundExpr::is_true(&pred.eval_row(r)))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.indices(), &expect[..]);
        assert!(!sel.is_empty());
    }

    #[test]
    fn selvec_range_and_truncate() {
        let mut sel = SelVec::range(4, 9);
        assert_eq!(sel.indices(), &[4, 5, 6, 7, 8]);
        sel.truncate(2);
        assert_eq!(sel.indices(), &[4, 5]);
        assert_eq!(SelVec::identity(0).len(), 0);
    }
}
