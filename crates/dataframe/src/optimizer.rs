//! Logical plan optimizer.
//!
//! The stock rewrite rules that run before physical planning (Catalyst's
//! logical optimization phase, §III-B): constant folding, filter merging,
//! and trivially-true/false filter elimination. Index-aware rewrites are
//! *not* here — they are physical-planning rules registered by the
//! `indexed-df` crate, mirroring how the paper ships them in an external
//! library.

use crate::expr::Expr;
use crate::plan::LogicalPlan;
use rowstore::Value;

/// Apply all logical rewrites until fixpoint (the rules here only shrink
/// the tree, so one bottom-up pass suffices).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    rewrite_bottom_up(plan)
}

fn rewrite_bottom_up(plan: LogicalPlan) -> LogicalPlan {
    // Recurse first.
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_bottom_up(*input)),
            predicate: predicate.fold(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_bottom_up(*input)),
            exprs: exprs.into_iter().map(|(e, n)| (e.fold(), n)).collect(),
        },
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => LogicalPlan::Join {
            left: Box::new(rewrite_bottom_up(*left)),
            right: Box::new(rewrite_bottom_up(*right)),
            left_key,
            right_key,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_bottom_up(*input)),
            group_by,
            aggs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite_bottom_up(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite_bottom_up(*input)),
            n,
        },
        leaf => leaf,
    };

    // Then rewrite this node.
    match plan {
        // Filter(TRUE) → input.
        LogicalPlan::Filter {
            input,
            predicate: Expr::Lit(Value::Bool(true)),
        } => *input,
        // Filter(FALSE) / Filter(NULL) keeps no rows → Limit 0. Planning
        // then pushes the zero cap into the scan, which stops immediately.
        LogicalPlan::Filter {
            input,
            predicate: Expr::Lit(Value::Bool(false)) | Expr::Lit(Value::Null),
        } => LogicalPlan::Limit { input, n: 0 },
        // Filter(Filter(x, p2), p1) → Filter(x, p2 AND p1).
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Filter {
                input: inner,
                predicate: inner_pred,
            } => LogicalPlan::Filter {
                input: inner,
                predicate: inner_pred.and(predicate),
            },
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => push_through_join(predicate, *left, *right, left_key, right_key),
            other => LogicalPlan::Filter {
                input: Box::new(other),
                predicate,
            },
        },
        // Limit(Limit(x, m), n) → Limit(x, min(m, n)).
        LogicalPlan::Limit { input, n } => match *input {
            LogicalPlan::Limit { input: inner, n: m } => LogicalPlan::Limit {
                input: inner,
                n: n.min(m),
            },
            other => LogicalPlan::Limit {
                input: Box::new(other),
                n,
            },
        },
        other => other,
    }
}

/// Push filter conjuncts below a join when they reference only one side —
/// the predicate-pushdown rule that makes selective joins cheap (and lets
/// the indexed-join rule see a bare indexed scan under the join). Conjuncts
/// referencing columns of both sides (or unresolvable ones) stay above.
fn push_through_join(
    predicate: Expr,
    left: LogicalPlan,
    right: LogicalPlan,
    left_key: String,
    right_key: String,
) -> LogicalPlan {
    let (Ok(left_schema), Ok(right_schema)) = (left.schema(), right.schema()) else {
        // Schemas unresolvable (error surfaces later in planning): bail out.
        return LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                left_key,
                right_key,
            }),
            predicate,
        };
    };

    let mut left_preds: Vec<Expr> = Vec::new();
    let mut right_preds: Vec<Expr> = Vec::new();
    let mut remaining: Vec<Expr> = Vec::new();
    for conjunct in split_conjuncts(predicate) {
        let mut refs = Vec::new();
        conjunct.referenced(&mut refs);
        // A column named `right.x` in the join output refers to the right
        // side's `x`; bare names resolve left-first (matching the join
        // output schema construction).
        let all_left = refs.iter().all(|r| left_schema.index_of(r).is_some());
        let all_right = refs.iter().all(|r| {
            let bare = r.strip_prefix("right.").unwrap_or(r);
            right_schema.index_of(bare).is_some()
                && (r.starts_with("right.") || left_schema.index_of(r).is_none())
        });
        if all_left {
            left_preds.push(conjunct);
        } else if all_right {
            right_preds.push(strip_right_prefix(conjunct));
        } else {
            remaining.push(conjunct);
        }
    }

    let apply = |plan: LogicalPlan, preds: Vec<Expr>| -> LogicalPlan {
        match preds.into_iter().reduce(|a, b| a.and(b)) {
            Some(p) => LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: p,
            },
            None => plan,
        }
    };
    let joined = LogicalPlan::Join {
        left: Box::new(apply(left, left_preds)),
        right: Box::new(apply(right, right_preds)),
        left_key,
        right_key,
    };
    apply(joined, remaining)
}

/// Split a predicate at top-level ANDs.
fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            left,
            op: crate::expr::BinOp::And,
            right,
        } => {
            let mut out = split_conjuncts(*left);
            out.extend(split_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

/// Rewrite `right.x` column references to `x` for evaluation against the
/// right input's own schema.
fn strip_right_prefix(e: Expr) -> Expr {
    match e {
        Expr::Col(name) => Expr::Col(name.strip_prefix("right.").unwrap_or(&name).to_string()),
        Expr::Lit(v) => Expr::Lit(v),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(strip_right_prefix(*left)),
            op,
            right: Box::new(strip_right_prefix(*right)),
        },
        Expr::Not(inner) => Expr::Not(Box::new(strip_right_prefix(*inner))),
        Expr::IsNull(inner) => Expr::IsNull(Box::new(strip_right_prefix(*inner))),
        Expr::IsNotNull(inner) => Expr::IsNotNull(Box::new(strip_right_prefix(*inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use rowstore::{DataType, Field, Schema};

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![Field::new("x", DataType::Int64)]),
        }
    }

    #[test]
    fn true_filter_removed() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: lit(true),
        };
        assert_eq!(optimize(p), scan());
    }

    #[test]
    fn constant_predicate_folded_then_removed() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: lit(1i64).lt(lit(2i64)),
        };
        assert_eq!(optimize(p), scan());
    }

    #[test]
    fn nested_filters_merged() {
        let p = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: col("x").gt(lit(0i64)),
            }),
            predicate: col("x").lt(lit(10i64)),
        };
        match optimize(p) {
            LogicalPlan::Filter { input, predicate } => {
                assert_eq!(*input, scan());
                assert_eq!(
                    predicate,
                    col("x").gt(lit(0i64)).and(col("x").lt(lit(10i64)))
                );
            }
            other => panic!("expected merged filter, got {other:?}"),
        }
    }

    #[test]
    fn false_filter_becomes_limit_zero() {
        let p = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: lit(1i64).lt(lit(0i64)), // folds to FALSE
        };
        assert_eq!(
            optimize(p),
            LogicalPlan::Limit {
                input: Box::new(scan()),
                n: 0
            }
        );
    }

    #[test]
    fn nested_limits_take_min() {
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Limit {
                input: Box::new(scan()),
                n: 5,
            }),
            n: 10,
        };
        assert_eq!(
            optimize(p),
            LogicalPlan::Limit {
                input: Box::new(scan()),
                n: 5
            }
        );
    }

    fn two_table_join() -> (LogicalPlan, LogicalPlan) {
        let l = LogicalPlan::Scan {
            table: "l".into(),
            schema: Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("lv", DataType::Int64),
            ]),
        };
        let r = LogicalPlan::Scan {
            table: "r".into(),
            schema: Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("rv", DataType::Int64),
            ]),
        };
        (l, r)
    }

    #[test]
    fn filter_pushdown_splits_sides() {
        let (l, r) = two_table_join();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
                left_key: "k".into(),
                right_key: "k".into(),
            }),
            predicate: col("lv")
                .gt(lit(1i64))
                .and(col("rv").lt(lit(9i64)))
                .and(col("lv").eq(col("rv"))),
        };
        match optimize(plan) {
            LogicalPlan::Filter { input, predicate } => {
                // Cross-side conjunct stays above.
                assert_eq!(predicate, col("lv").eq(col("rv")));
                let LogicalPlan::Join { left, right, .. } = *input else {
                    panic!("expected join")
                };
                assert_eq!(
                    *left,
                    LogicalPlan::Filter {
                        input: Box::new(l),
                        predicate: col("lv").gt(lit(1i64))
                    }
                );
                assert_eq!(
                    *right,
                    LogicalPlan::Filter {
                        input: Box::new(r),
                        predicate: col("rv").lt(lit(9i64))
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_pushdown_right_prefixed_columns() {
        let (l, r) = two_table_join();
        // `right.k` refers to the right side's key; bare `k` resolves left.
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(l.clone()),
                right: Box::new(r.clone()),
                left_key: "k".into(),
                right_key: "k".into(),
            }),
            predicate: col("right.k").gt(lit(5i64)).and(col("k").lt(lit(100i64))),
        };
        match optimize(plan) {
            LogicalPlan::Join { left, right, .. } => {
                assert_eq!(
                    *left,
                    LogicalPlan::Filter {
                        input: Box::new(l),
                        predicate: col("k").lt(lit(100i64))
                    }
                );
                assert_eq!(
                    *right,
                    LogicalPlan::Filter {
                        input: Box::new(r),
                        predicate: col("k").gt(lit(5i64))
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folding_reaches_projections() {
        let p = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![(lit(2i64).mul(lit(3i64)), "six".into())],
        };
        match optimize(p) {
            LogicalPlan::Project { exprs, .. } => {
                assert_eq!(exprs[0].0, lit(6i64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
