//! Columnar in-memory cache — the paper's performance baseline.
//!
//! "The Indexed DataFrame is an in-memory table, thus our performance
//! baseline is the default in-memory (columnar) caching mechanism provided
//! by Spark" (§IV-A). Vanilla tables are cached as typed column vectors per
//! partition; scans, filters and projections operate directly on columns,
//! which is why projections beat the Indexed DataFrame's row-wise storage
//! in Fig. 8 / SQ5–SQ6 of Fig. 13.

use rowstore::{DataType, Row, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A typed column vector with a validity mask.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    Int32 {
        values: Vec<i32>,
        nulls: Vec<bool>,
    },
    Int64 {
        values: Vec<i64>,
        nulls: Vec<bool>,
    },
    Float64 {
        values: Vec<f64>,
        nulls: Vec<bool>,
    },
    Bool {
        values: Vec<bool>,
        nulls: Vec<bool>,
    },
    Utf8 {
        values: Vec<String>,
        nulls: Vec<bool>,
    },
}

impl ColumnVec {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> ColumnVec {
        match dtype {
            DataType::Int32 => ColumnVec::Int32 {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Int64 => ColumnVec::Int64 {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Float64 => ColumnVec::Float64 {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Bool => ColumnVec::Bool {
                values: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Utf8 => ColumnVec::Utf8 {
                values: Vec::new(),
                nulls: Vec::new(),
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int32 { values, .. } => values.len(),
            ColumnVec::Int64 { values, .. } => values.len(),
            ColumnVec::Float64 { values, .. } => values.len(),
            ColumnVec::Bool { values, .. } => values.len(),
            ColumnVec::Utf8 { values, .. } => values.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one dynamic value (must match the column type or be null).
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnVec::Int32 { values, nulls }, Value::Int32(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (ColumnVec::Int32 { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (ColumnVec::Int64 { values, nulls }, Value::Int64(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (ColumnVec::Int64 { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (ColumnVec::Float64 { values, nulls }, Value::Float64(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (ColumnVec::Float64 { values, nulls }, Value::Null) => {
                values.push(0.0);
                nulls.push(true);
            }
            (ColumnVec::Bool { values, nulls }, Value::Bool(x)) => {
                values.push(*x);
                nulls.push(false);
            }
            (ColumnVec::Bool { values, nulls }, Value::Null) => {
                values.push(false);
                nulls.push(true);
            }
            (ColumnVec::Utf8 { values, nulls }, Value::Utf8(x)) => {
                values.push(x.clone());
                nulls.push(false);
            }
            (ColumnVec::Utf8 { values, nulls }, Value::Null) => {
                values.push(String::new());
                nulls.push(true);
            }
            (col, v) => panic!("type mismatch pushing {v:?} into {:?} column", col.dtype()),
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            ColumnVec::Int32 { .. } => DataType::Int32,
            ColumnVec::Int64 { .. } => DataType::Int64,
            ColumnVec::Float64 { .. } => DataType::Float64,
            ColumnVec::Bool { .. } => DataType::Bool,
            ColumnVec::Utf8 { .. } => DataType::Utf8,
        }
    }

    /// Materialize the value at `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int32 { values, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Int32(values[i])
                }
            }
            ColumnVec::Int64 { values, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Int64(values[i])
                }
            }
            ColumnVec::Float64 { values, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Float64(values[i])
                }
            }
            ColumnVec::Bool { values, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Bool(values[i])
                }
            }
            ColumnVec::Utf8 { values, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Utf8(values[i].clone())
                }
            }
        }
    }

    /// Integer view without allocation (filter/join fast path).
    #[inline]
    pub fn i64_at(&self, i: usize) -> Option<i64> {
        match self {
            ColumnVec::Int32 { values, nulls } => (!nulls[i]).then(|| values[i] as i64),
            ColumnVec::Int64 { values, nulls } => (!nulls[i]).then(|| values[i]),
            _ => None,
        }
    }

    /// Borrowed string view without allocation.
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            ColumnVec::Utf8 { values, nulls } => (!nulls[i]).then(|| values[i].as_str()),
            _ => None,
        }
    }

    /// Whether slot `i` is null (kernel fast path: no `Value` boxing).
    #[inline]
    pub fn null_at(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int32 { nulls, .. }
            | ColumnVec::Int64 { nulls, .. }
            | ColumnVec::Float64 { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Utf8 { nulls, .. } => nulls[i],
        }
    }

    /// Numeric view widened to f64 without allocation (`Value::as_f64`).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            ColumnVec::Int32 { values, nulls } => (!nulls[i]).then(|| values[i] as f64),
            ColumnVec::Int64 { values, nulls } => (!nulls[i]).then(|| values[i] as f64),
            ColumnVec::Float64 { values, nulls } => (!nulls[i]).then(|| values[i]),
            _ => None,
        }
    }

    /// Hash slot `i` exactly like `Value::key_hash` hashes the
    /// materialized value, without materializing it.
    #[inline]
    pub fn key_hash_at(&self, i: usize) -> u64 {
        if self.null_at(i) {
            return rowstore::key_hash_u64(rowstore::NULL_KEY_PAYLOAD);
        }
        match self {
            ColumnVec::Int32 { values, .. } => rowstore::key_hash_u64(values[i] as i64 as u64),
            ColumnVec::Int64 { values, .. } => rowstore::key_hash_u64(values[i] as u64),
            ColumnVec::Float64 { values, .. } => rowstore::key_hash_u64(values[i].to_bits()),
            ColumnVec::Bool { values, .. } => rowstore::key_hash_u64(values[i] as u64),
            ColumnVec::Utf8 { values, .. } => rowstore::key_hash_bytes(values[i].as_bytes()),
        }
    }

    /// `Value::sql_cmp` between slot `i` and `v` without materializing the
    /// slot: `None` when either side is null or the types are incomparable.
    pub fn cmp_value(&self, i: usize, v: &Value) -> Option<Ordering> {
        if self.null_at(i) || v.is_null() {
            return None;
        }
        match (self, v) {
            (ColumnVec::Int32 { values, .. }, _) => match v {
                Value::Int32(_) | Value::Int64(_) => (values[i] as i64).partial_cmp(&v.as_i64()?),
                Value::Float64(b) => (values[i] as f64).partial_cmp(b),
                _ => None,
            },
            (ColumnVec::Int64 { values, .. }, _) => match v {
                Value::Int32(_) | Value::Int64(_) => values[i].partial_cmp(&v.as_i64()?),
                Value::Float64(b) => (values[i] as f64).partial_cmp(b),
                _ => None,
            },
            (ColumnVec::Float64 { values, .. }, _) => values[i].partial_cmp(&v.as_f64()?),
            (ColumnVec::Bool { values, .. }, Value::Bool(b)) => Some(values[i].cmp(b)),
            (ColumnVec::Utf8 { values, .. }, Value::Utf8(s)) => Some(values[i].as_str().cmp(s)),
            _ => None,
        }
    }

    /// A dense copy of the slots at `indices` (selection-vector gather).
    pub fn gather(&self, indices: &[u32]) -> ColumnVec {
        fn take<T: Clone>(src: &[T], nulls: &[bool], idx: &[u32]) -> (Vec<T>, Vec<bool>) {
            (
                idx.iter().map(|&i| src[i as usize].clone()).collect(),
                idx.iter().map(|&i| nulls[i as usize]).collect(),
            )
        }
        match self {
            ColumnVec::Int32 { values, nulls } => {
                let (values, nulls) = take(values, nulls, indices);
                ColumnVec::Int32 { values, nulls }
            }
            ColumnVec::Int64 { values, nulls } => {
                let (values, nulls) = take(values, nulls, indices);
                ColumnVec::Int64 { values, nulls }
            }
            ColumnVec::Float64 { values, nulls } => {
                let (values, nulls) = take(values, nulls, indices);
                ColumnVec::Float64 { values, nulls }
            }
            ColumnVec::Bool { values, nulls } => {
                let (values, nulls) = take(values, nulls, indices);
                ColumnVec::Bool { values, nulls }
            }
            ColumnVec::Utf8 { values, nulls } => {
                let (values, nulls) = take(values, nulls, indices);
                ColumnVec::Utf8 { values, nulls }
            }
        }
    }

    /// Approximate heap bytes held by this column.
    pub fn heap_bytes(&self) -> usize {
        let n = self.len();
        match self {
            ColumnVec::Int32 { .. } => n * 5,
            ColumnVec::Int64 { .. } | ColumnVec::Float64 { .. } => n * 9,
            ColumnVec::Bool { .. } => n * 2,
            ColumnVec::Utf8 { values, .. } => {
                n + values
                    .iter()
                    .map(|s| s.len() + std::mem::size_of::<String>())
                    .sum::<usize>()
            }
        }
    }
}

/// One cached partition: columns of equal length.
#[derive(Debug, Clone)]
pub struct ColumnarPartition {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnarPartition {
    /// An empty partition shaped like `schema`.
    pub fn empty(schema: &Schema) -> ColumnarPartition {
        ColumnarPartition {
            columns: schema
                .fields()
                .iter()
                .map(|f| ColumnVec::empty(f.dtype))
                .collect(),
            rows: 0,
        }
    }

    /// Build from materialized rows.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnarPartition {
        let mut p = ColumnarPartition::empty(schema);
        for r in rows {
            p.push_row(r);
        }
        p
    }

    /// Wrap kernel-produced columns of equal length (fused pipeline output;
    /// no row materialization).
    pub fn from_columns(columns: Vec<ColumnVec>) -> ColumnarPartition {
        let rows = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            assert_eq!(c.len(), rows, "column length mismatch");
        }
        ColumnarPartition { columns, rows }
    }

    /// Gather the rows selected by `indices`, keeping only `cols` (or all
    /// columns when `None`) — the fused projection step, column-at-a-time.
    pub fn gather_project(&self, indices: &[u32], cols: Option<&[usize]>) -> ColumnarPartition {
        let columns = match cols {
            Some(cols) => cols
                .iter()
                .map(|&c| self.columns[c].gather(indices))
                .collect(),
            None => self.columns.iter().map(|c| c.gather(indices)).collect(),
        };
        ColumnarPartition {
            columns,
            rows: indices.len(),
        }
    }

    pub fn push_row(&mut self, row: &Row) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, v) in self.columns.iter_mut().zip(row.iter()) {
            c.push(v);
        }
        self.rows += 1;
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Materialize only `cols` of row `i` — the columnar projection fast
    /// path (touches just the projected columns).
    pub fn row_projected(&self, i: usize, cols: &[usize]) -> Row {
        cols.iter().map(|&c| self.columns[c].value(i)).collect()
    }

    /// Approximate heap bytes of this partition.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }
}

/// A distributed columnar table: one cached partition per engine partition.
#[derive(Clone)]
pub struct ColumnarTable {
    pub schema: Arc<Schema>,
    pub partitions: Vec<Arc<ColumnarPartition>>,
}

impl ColumnarTable {
    /// Partition `rows` round-robin into `num_partitions` cached partitions.
    pub fn from_rows(schema: Arc<Schema>, rows: Vec<Row>, num_partitions: usize) -> ColumnarTable {
        assert!(num_partitions > 0);
        let mut parts: Vec<ColumnarPartition> = (0..num_partitions)
            .map(|_| ColumnarPartition::empty(&schema))
            .collect();
        for (i, r) in rows.iter().enumerate() {
            parts[i % num_partitions].push_row(r);
        }
        ColumnarTable {
            schema,
            partitions: parts.into_iter().map(Arc::new).collect(),
        }
    }

    /// Wrap pre-partitioned rows.
    pub fn from_partitions(schema: Arc<Schema>, parts: Vec<Vec<Row>>) -> ColumnarTable {
        let partitions = parts
            .iter()
            .map(|rows| Arc::new(ColumnarPartition::from_rows(&schema, rows)))
            .collect();
        ColumnarTable { schema, partitions }
    }

    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn heap_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.heap_bytes()).sum()
    }
}

/// A table whose partitions can be handed to the vectorized pipeline as
/// shared columnar storage. Providers advertise it via
/// [`crate::context::TableProvider::columnar_source`]; the planner fuses
/// scan→filter→project(→limit) chains over any source that does.
pub trait ColumnarSource: Send + Sync {
    fn schema(&self) -> Arc<Schema>;
    fn num_partitions(&self) -> usize;
    /// Shared handle to partition `i` (cheap: refcount bump, no copy).
    fn partition(&self, i: usize) -> Arc<ColumnarPartition>;
    fn num_rows(&self) -> usize;
}

impl ColumnarSource for ColumnarTable {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn partition(&self, i: usize) -> Arc<ColumnarPartition> {
        Arc::clone(&self.partitions[i])
    }

    fn num_rows(&self) -> usize {
        ColumnarTable::num_rows(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowstore::Field;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::nullable("score", DataType::Float64),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            vec![
                Value::Int64(1),
                Value::Utf8("a".into()),
                Value::Float64(0.5),
            ],
            vec![Value::Int64(2), Value::Null, Value::Float64(1.5)],
            vec![Value::Int64(3), Value::Utf8("c".into()), Value::Null],
        ]
    }

    #[test]
    fn roundtrip_rows() {
        let p = ColumnarPartition::from_rows(&schema(), &rows());
        assert_eq!(p.num_rows(), 3);
        for (i, r) in rows().iter().enumerate() {
            assert_eq!(&p.row(i), r);
        }
    }

    #[test]
    fn projection_touches_selected_columns() {
        let p = ColumnarPartition::from_rows(&schema(), &rows());
        assert_eq!(
            p.row_projected(1, &[2, 0]),
            vec![Value::Float64(1.5), Value::Int64(2)]
        );
    }

    #[test]
    fn fast_accessors() {
        let p = ColumnarPartition::from_rows(&schema(), &rows());
        assert_eq!(p.column(0).i64_at(2), Some(3));
        assert_eq!(p.column(1).str_at(0), Some("a"));
        assert_eq!(p.column(1).str_at(1), None, "null yields None");
        assert_eq!(p.column(2).i64_at(0), None, "float is not an int");
    }

    #[test]
    fn table_partitioning_spreads_rows() {
        let many: Vec<Row> = (0..100)
            .map(|i| {
                vec![
                    Value::Int64(i),
                    Value::Utf8(format!("n{i}")),
                    Value::Float64(0.0),
                ]
            })
            .collect();
        let t = ColumnarTable::from_rows(schema(), many, 4);
        assert_eq!(t.num_partitions(), 4);
        assert_eq!(t.num_rows(), 100);
        for p in &t.partitions {
            assert_eq!(p.num_rows(), 25);
        }
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut c = ColumnVec::empty(DataType::Int64);
        c.push(&Value::Utf8("no".into()));
    }

    #[test]
    fn heap_bytes_positive() {
        let t = ColumnarTable::from_rows(schema(), rows(), 2);
        assert!(t.heap_bytes() > 0);
    }
}
