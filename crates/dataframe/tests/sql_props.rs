//! Property-based tests: the distributed engine agrees with a naive
//! single-threaded reference interpreter on generated predicates and data.

use dataframe::{BoundExpr, ColumnarTable, Context, Expr};
use proptest::prelude::*;
use rowstore::{DataType, Field, Row, Schema, Value};
use sparklet::{Cluster, ClusterConfig};
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::nullable("b", DataType::Int64),
        Field::new("s", DataType::Utf8),
        Field::nullable("f", DataType::Float64),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        -50i64..50,
        proptest::option::of(-20i64..20),
        "[a-d]{0,3}",
        proptest::option::of(-5.0f64..5.0),
    )
        .prop_map(|(a, b, s, f)| {
            vec![
                Value::Int64(a),
                b.map(Value::Int64).unwrap_or(Value::Null),
                Value::Utf8(s),
                f.map(Value::Float64).unwrap_or(Value::Null),
            ]
        })
}

/// Generated predicate expressions over the schema above.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    use dataframe::{col, lit};
    let leaf = prop_oneof![
        (-50i64..50).prop_map(|v| col("a").gt(lit(v))),
        (-50i64..50).prop_map(|v| col("a").lt_eq(lit(v))),
        (-20i64..20).prop_map(|v| col("b").eq(lit(v))),
        "[a-d]{0,3}".prop_map(|s| col("s").eq(lit(s.as_str()))),
        (-5.0f64..5.0).prop_map(|v| col("f").gt_eq(lit(v))),
        Just(col("b").is_null()),
        Just(col("f").is_not_null()),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.prop_map(|e| e.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Distributed filter == row-at-a-time reference evaluation.
    #[test]
    fn filter_matches_reference(
        rows in proptest::collection::vec(arb_row(), 0..120),
        pred in arb_predicate(),
        partitions in 1usize..5,
    ) {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        ctx.register_table(
            "t",
            Arc::new(ColumnarTable::from_rows(schema(), rows.clone(), partitions)),
        );
        let got = ctx.table("t").unwrap().filter(pred.clone()).collect().unwrap();

        let bound = BoundExpr::bind(&pred, &schema()).unwrap();
        let expected: Vec<Row> = rows
            .into_iter()
            .filter(|r| BoundExpr::is_true(&bound.eval_row(r)))
            .collect();
        let canon = |mut v: Vec<Row>| {
            let mut s: Vec<String> = v.drain(..).map(|r| format!("{r:?}")).collect();
            s.sort();
            s
        };
        prop_assert_eq!(canon(got), canon(expected));
    }

    /// COUNT(*) equals the collected length for any filter.
    #[test]
    fn count_equals_collect_len(
        rows in proptest::collection::vec(arb_row(), 0..80),
        pred in arb_predicate(),
    ) {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        ctx.register_table("t", Arc::new(ColumnarTable::from_rows(schema(), rows, 3)));
        let df = ctx.table("t").unwrap().filter(pred);
        prop_assert_eq!(df.count().unwrap(), df.collect().unwrap().len());
    }

    /// Sorting is a permutation and is correctly ordered (nulls last).
    #[test]
    fn sort_orders_and_preserves(
        rows in proptest::collection::vec(arb_row(), 0..80),
        desc in any::<bool>(),
    ) {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        ctx.register_table("t", Arc::new(ColumnarTable::from_rows(schema(), rows.clone(), 3)));
        let sorted = ctx.table("t").unwrap().sort(&[("b", desc)]).collect().unwrap();
        prop_assert_eq!(sorted.len(), rows.len());
        // Check ordering of the sort key.
        let keys: Vec<Option<i64>> = sorted.iter().map(|r| r[1].as_i64()).collect();
        for w in keys.windows(2) {
            match (w[0], w[1]) {
                (Some(x), Some(y)) => {
                    if desc {
                        prop_assert!(x >= y, "descending violated: {x} then {y}");
                    } else {
                        prop_assert!(x <= y, "ascending violated: {x} then {y}");
                    }
                }
                (None, Some(_)) => prop_assert!(false, "null before non-null"),
                _ => {}
            }
        }
    }

    /// LIMIT n returns min(n, len) rows that are all members of the input.
    #[test]
    fn limit_bounds(rows in proptest::collection::vec(arb_row(), 0..60), n in 0usize..80) {
        let ctx = Context::new(Cluster::new(ClusterConfig::test_small()));
        ctx.register_table("t", Arc::new(ColumnarTable::from_rows(schema(), rows.clone(), 4)));
        let got = ctx.table("t").unwrap().limit(n).collect().unwrap();
        prop_assert_eq!(got.len(), n.min(rows.len()));
        let pool: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        for r in &got {
            let key = format!("{r:?}");
            prop_assert!(pool.contains(&key));
        }
    }
}
